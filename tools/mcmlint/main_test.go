package main

import (
	"encoding/json"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func names(as []*Analyzer) string { return strings.Join(analyzerNames(as), ",") }

func TestSelectAnalyzers(t *testing.T) {
	cases := []struct {
		enable, disable string
		want            string
		wantErr         bool
	}{
		{"", "", "det,deepcopy,ctxloop,hotalloc,guarded,lockorder,goleak,errcontract", false},
		{"det,guarded", "", "det,guarded", false},
		{"", "hotalloc", "det,deepcopy,ctxloop,guarded,lockorder,goleak,errcontract", false},
		{"lockorder,errcontract", "", "lockorder,errcontract", false},
		{"det,ctxloop", "ctxloop", "det", false},
		{"nosuch", "", "", true},
		{"", "nosuch", "", true},
		{"det", "det", "", true}, // empty set is an error, not a silent no-op
	}
	for _, c := range cases {
		got, err := selectAnalyzers(c.enable, c.disable)
		if c.wantErr {
			if err == nil {
				t.Errorf("selectAnalyzers(%q, %q): want error, got %s", c.enable, c.disable, names(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("selectAnalyzers(%q, %q): %v", c.enable, c.disable, err)
			continue
		}
		if names(got) != c.want {
			t.Errorf("selectAnalyzers(%q, %q) = %s, want %s", c.enable, c.disable, names(got), c.want)
		}
	}
}

// TestRunDirsOnFixture exercises the direct (non-vet) entry point end to
// end: the seeded det fixture must produce findings (exit 2), and
// disabling det must silence them (exit 0).
func TestRunDirsOnFixture(t *testing.T) {
	dir := filepath.Join("testdata", "det")
	if got := runDirs([]string{dir}, allAnalyzers, false); got != 2 {
		t.Errorf("runDirs(%s, all) = %d, want 2 (seeded violations)", dir, got)
	}
	only, err := selectAnalyzers("", "det")
	if err != nil {
		t.Fatal(err)
	}
	if got := runDirs([]string{dir}, only, false); got != 0 {
		t.Errorf("runDirs(%s, -disable=det) = %d, want 0", dir, got)
	}
}

// TestVetUnitProtocol drives the unitchecker path with a hand-written cfg:
// a VetxOnly (dependency) unit must write its facts file and stay silent; a
// target unit over the fixture must report findings and still write facts.
func TestVetUnitProtocol(t *testing.T) {
	tmp := t.TempDir()
	vetx := filepath.Join(tmp, "unit.vetx")
	cfgPath := filepath.Join(tmp, "dep.cfg")
	if err := os.WriteFile(cfgPath, []byte(`{"ImportPath":"p","VetxOnly":true,"VetxOutput":"`+vetx+`"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if got := runVetUnit(cfgPath, allAnalyzers, false); got != 0 {
		t.Fatalf("VetxOnly unit: exit %d, want 0", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("VetxOnly unit did not write facts file: %v", err)
	}

	fixture, err := filepath.Abs(filepath.Join("testdata", "det", "violation.go"))
	if err != nil {
		t.Fatal(err)
	}
	vetx2 := filepath.Join(tmp, "target.vetx")
	cfg2 := filepath.Join(tmp, "target.cfg")
	if err := os.WriteFile(cfg2, []byte(`{"ImportPath":"fixture","GoFiles":["`+fixture+`"],"VetxOutput":"`+vetx2+`"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if got := runVetUnit(cfg2, allAnalyzers, false); got != 2 {
		t.Fatalf("target unit: exit %d, want 2 (seeded violations)", got)
	}
	if _, err := os.Stat(vetx2); err != nil {
		t.Fatalf("target unit did not write facts file: %v", err)
	}
}

// TestJSONReport pins the -json schema: every finding (including
// suppressed ones, with their reasons) lands in the array, the output is
// valid JSON even when empty, and the exit status still counts only
// unsuppressed findings.
func TestJSONReport(t *testing.T) {
	capture := func(fn func() int) (string, int) {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		code := fn()
		w.Close()
		os.Stdout = old
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(data), code
	}

	out, code := capture(func() int { return report(nil, true) })
	var empty []jsonFinding
	if err := json.Unmarshal([]byte(out), &empty); err != nil {
		t.Fatalf("empty report is not valid JSON: %v\n%s", err, out)
	}
	if len(empty) != 0 || code != 0 {
		t.Fatalf("empty report: got %d findings, exit %d; want 0, 0", len(empty), code)
	}

	findings := []finding{
		{analyzer: "det", pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, msg: "time.Now in a deterministic package [mcmlint:det]"},
		{analyzer: "guarded", pos: token.Position{Filename: "b.go", Line: 9, Column: 2}, msg: "suppressed [mcmlint:guarded]", suppressed: true, reason: "init happens before the value is shared"},
	}
	out, code = capture(func() int { return report(findings, true) })
	var got []jsonFinding
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("report output is not valid JSON: %v\n%s", err, out)
	}
	if len(got) != 2 {
		t.Fatalf("got %d JSON findings, want 2 (suppressed ones included)", len(got))
	}
	if got[0].File != "a.go" || got[0].Line != 3 || got[0].Col != 7 || got[0].Analyzer != "det" || got[0].Suppressed {
		t.Errorf("first finding mangled: %+v", got[0])
	}
	if !got[1].Suppressed || got[1].Suppression != "init happens before the value is shared" {
		t.Errorf("suppressed finding lost its reason: %+v", got[1])
	}
	if code != 2 {
		t.Errorf("exit = %d, want 2 (one unsuppressed finding)", code)
	}

	// All-suppressed output still emits the array but exits clean.
	out, code = capture(func() int { return report(findings[1:], true) })
	if err := json.Unmarshal([]byte(out), &got); err != nil || len(got) != 1 {
		t.Fatalf("all-suppressed report: %v, %d findings", err, len(got))
	}
	if code != 0 {
		t.Errorf("all-suppressed exit = %d, want 0", code)
	}
}

// TestVersionIncludesEnabledSet pins the vet cache-key property: changing
// the enabled analyzer set must change the -V=full identity line.
func TestVersionIncludesEnabledSet(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatal(err)
	}
	some, err := selectAnalyzers("det", "")
	if err != nil {
		t.Fatal(err)
	}
	if names(all) == names(some) {
		t.Fatal("enabled-set strings are identical; the -V cache key would not distinguish configurations")
	}
}
