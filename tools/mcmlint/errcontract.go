package main

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// errcontractAnalyzer enforces the error-routing contract of packages
// annotated //mcmlint:errcontract: every error they construct must stay
// reachable by errors.Is. The HTTP boundary (httpapi/client) routes on
// sentinels — ErrBusy → 429, ErrServiceClosed → 503, ErrPolicyRequired →
// 409, ErrInvalidRequest → 400 — so an error built with a naked
// errors.New deep in a call chain, or wrapped with %v instead of %w,
// silently falls out of that mapping and turns a typed failure into a
// generic one.
//
// In an annotated package the analyzer flags:
//
//   - errors.New calls anywhere except package-level var declarations
//     (that is where sentinels are declared);
//   - fmt.Errorf with a constant format string that has no %w verb —
//     wrap a sentinel or an underlying error instead.
//
// Typed errors (types implementing error) pass untouched: errors.Is and
// errors.As route them by construction. fmt.Errorf with a non-constant
// format is not flagged (nothing static to check).
var errcontractAnalyzer = &Analyzer{
	Name: "errcontract",
	Doc:  "packages annotated //mcmlint:errcontract may only return sentinel-wrapped (%w) or typed errors",
	Run:  runErrcontract,
}

func runErrcontract(pass *Pass) {
	if !pass.HasDirective("errcontract") {
		return
	}
	for _, file := range pass.Files {
		errorsName := importName(file, "errors")
		fmtName := importName(file, "fmt")
		if errorsName == "" && fmtName == "" {
			continue
		}
		sentinelSites := map[*ast.CallExpr]bool{}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					sentinelSites[call] = true
				}
				return true
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case errorsName != "" && pkg.Name == errorsName && sel.Sel.Name == "New":
				if !sentinelSites[call] {
					pass.Reportf(call.Pos(), "errors.New outside a package-level sentinel declaration: errors.Is cannot route it; declare a sentinel var and wrap it with fmt.Errorf(\"%%w: ...\", ErrX)")
				}
			case fmtName != "" && pkg.Name == fmtName && sel.Sel.Name == "Errorf":
				if len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if !hasWrapVerb(format) {
					pass.Reportf(call.Pos(), "fmt.Errorf without %%w at an error-contract boundary: errors.Is cannot route the result; wrap a sentinel or the underlying error with %%w")
				}
			}
			return true
		})
	}
}

// hasWrapVerb reports whether the format string contains a %w verb
// (ignoring %% escapes and skipping flags/width/precision).
func hasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision, and argument indexes up to the verb.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			return true
		}
	}
	return false
}
