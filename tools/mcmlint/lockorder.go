package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorderAnalyzer builds the unit's lock-acquisition graph and reports
// cycles — the static shape of a potential deadlock. An edge A → B is
// recorded whenever a mutex of class B (named type + field, e.g. Job.mu)
// is acquired at a point where a mutex of class A is held on every path;
// held-ness comes from the same must-hold-lock dataflow guarded v2 uses,
// so defer Unlock, early returns, and branches are all respected.
//
// Acquisitions are seen three ways:
//
//   - directly: s.mu.Lock() while another lock is held;
//   - through one-level call summaries: calling a helper whose body locks
//     (j.Status() under Service.mu records Service.mu → Job.mu);
//   - across packages, approximately: calling a method of an imported
//     type that has mutex fields while holding a lock records an edge to
//     every such field (pkg.Type.field) — the callee is assumed to be
//     lock-balanced, so held facts do not change.
//
// *Locked-suffix methods are analyzed with their receiver type's guard
// mutexes seeded as held (that is the convention's assertion), which is
// how a chain like Submit → registerJobLocked → Job.Status surfaces as
// Service.mu → Job.mu one summary level at a time.
//
// The graph is per build unit. Go's import graph is acyclic and lock
// classes are namespaced by package, so a cross-package inversion would
// need an upcall (a callback into the importing package) — invisible to
// any static call analysis, summaries or not; see DESIGN.md §13.
//
// Re-acquiring the exact mutex expression already held (m.Lock() twice
// with no Unlock between) is reported immediately as a self-deadlock.
// TryLock is treated as an unconditional acquire.
var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "the lock-acquisition graph must be acyclic; report lock-order inversions with both sites named",
	Run:  runLockorder,
}

// lockEdge is the first observed acquisition of `to` while holding `from`.
type lockEdge struct {
	pos token.Pos // where `to` was acquired
	fn  string    // enclosing function
}

type lockGraph struct {
	pass  *Pass
	sums  map[types.Object]*funcSummary
	edges map[string]map[string]lockEdge // from class -> to class -> site
}

func runLockorder(pass *Pass) {
	if pass.Info == nil {
		return
	}
	sums := computeSummaries(pass)
	guards, _ := guardedFields(pass) // annotation issues are guarded's to report
	lg := &lockGraph{pass: pass, sums: sums, edges: map[string]map[string]lockEdge{}}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := facts{}
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Name.Name != "Locked" {
				seedLockedEntry(fd, guards, entry)
			}
			lg.walk(fd.Name.Name, fd.Body, entry)
		}
	}
	lg.reportCycles()
}

// seedLockedEntry marks the receiver type's guard mutexes held, which is
// what the *Locked suffix asserts about the caller. When a type has
// several guard mutexes the seeding is an over-approximation (edges are
// may-facts; held state stays must).
func seedLockedEntry(fd *ast.FuncDecl, guards map[string]map[string]guardSpec, entry facts) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	recvName := receiverName(fd)
	typeName := baseTypeName(fd.Recv.List[0].Type)
	seen := map[string]bool{}
	for _, spec := range guards[typeName] {
		cls := spec.class(typeName)
		if seen[cls] {
			continue
		}
		seen[cls] = true
		entry["c:"+cls] = true
		if spec.owner == "" && recvName != "" {
			expr := recvName + "." + spec.mu
			entry["e:"+expr] = true
			entry["a:"+cls+"|"+expr] = true
		} else {
			entry["a:"+cls+"|"] = true
		}
	}
}

// baseTypeName extracts the receiver type name from an ast receiver type
// expression (unwrapping pointers and generics).
func baseTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return baseTypeName(e.X)
	case *ast.IndexExpr:
		return baseTypeName(e.X)
	case *ast.IndexListExpr:
		return baseTypeName(e.X)
	}
	return ""
}

// walk runs the dataflow over one body and records edges at every
// acquisition made while locks are held. Function literals are separate
// contexts starting with nothing held.
func (lg *lockGraph) walk(fnName string, body *ast.BlockStmt, entry facts) {
	g := buildCFG(body)
	step := func(n ast.Node, f facts) {
		lockWalk(n, func(call *ast.CallExpr) {
			if ev, ok := asLockEvent(lg.pass, call); ok {
				ev.apply(f)
				return
			}
			applyCallSummary(lg.pass, lg.sums, call, f)
		})
	}
	in := mustFlow(g, entry, step)

	var lits []*ast.FuncLit
	for _, b := range g.blocks {
		f := in[b]
		if f == nil {
			continue
		}
		f = cloneFacts(f)
		for _, n := range b.nodes {
			lg.observeNode(fnName, n, f)
			step(n, f)
			ast.Inspect(n, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lits = append(lits, lit)
					return false
				}
				return true
			})
		}
	}
	for _, lit := range lits {
		lg.walk(fnName, lit.Body, facts{})
	}
}

// observeNode fires once per node in a single reporting sweep, with f the
// facts holding when the node executes; it records edges and immediate
// self-deadlocks without mutating f (the caller applies the step after).
func (lg *lockGraph) observeNode(fnName string, n ast.Node, f facts) {
	lockWalk(n, func(call *ast.CallExpr) {
		if ev, ok := asLockEvent(lg.pass, call); ok {
			if !ev.acquire {
				return
			}
			if ev.expr != "" && f["e:"+ev.expr] && exclusiveAcquire(call) {
				lg.pass.Reportf(call.Pos(), "%s is already held on every path to this Lock: guaranteed self-deadlock", ev.expr)
			}
			if ev.class != "" {
				lg.addEdges(fnName, f, ev.class, ev.expr, call.Pos())
			}
			return
		}
		obj := calleeObject(lg.pass, call)
		if obj == nil {
			return
		}
		if sum, ok := lg.sums[obj]; ok {
			recv := callRecvPath(call)
			for _, acq := range sum.acquires {
				expr := strings.ReplaceAll(acq.expr, recvPlaceholder, recv)
				lg.addEdges(fnName, f, acq.class, expr, call.Pos())
			}
			return
		}
		lg.crossPackageEdges(fnName, f, obj, call)
	})
}

func exclusiveAcquire(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name == "Lock" || sel.Sel.Name == "TryLock"
	}
	return false
}

// crossPackageEdges approximates lock acquisition inside an imported
// type's method: any mutex field of the receiver type becomes an edge
// target (pkg.Type.field). Held facts are not changed — the callee is
// assumed lock-balanced.
func (lg *lockGraph) crossPackageEdges(fnName string, f facts, obj types.Object, call *ast.CallExpr) {
	if len(f) == 0 {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == lg.pass.Pkg {
		return
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if !isMutexType(fld.Type()) {
			continue
		}
		cls := fn.Pkg().Name() + "." + named.Obj().Name() + "." + fld.Name()
		lg.addEdges(fnName, f, cls, "", call.Pos())
	}
}

// addEdges records from→acquired for every held lock class. Acquiring the
// same class through a different expression is a self-edge (two instances
// of one class, the classic AB/BA inversion collapsed onto one type).
func (lg *lockGraph) addEdges(fnName string, f facts, toClass, toExpr string, pos token.Pos) {
	for _, held := range heldAssociations(f) {
		fromClass, fromExpr := held[0], held[1]
		if fromClass == toClass && (fromExpr == toExpr || toExpr == "") {
			continue // re-entry on the same instance is the self-deadlock check's job
		}
		m := lg.edges[fromClass]
		if m == nil {
			m = map[string]lockEdge{}
			lg.edges[fromClass] = m
		}
		if _, ok := m[toClass]; !ok {
			m[toClass] = lockEdge{pos: pos, fn: fnName}
		}
	}
}

// reportCycles finds every elementary cycle reachable in the edge graph
// (deduplicated by rotation) and names each hop's acquisition site.
func (lg *lockGraph) reportCycles() {
	nodes := make([]string, 0, len(lg.edges))
	for n := range lg.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	reported := map[string]bool{}
	var dfs func(path []string, onPath map[string]bool)
	dfs = func(path []string, onPath map[string]bool) {
		cur := path[len(path)-1]
		succs := make([]string, 0, len(lg.edges[cur]))
		for to := range lg.edges[cur] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, to := range succs {
			if onPath[to] {
				// Close the cycle only at its start to report it once per
				// entry point; rotation dedup handles the rest.
				if to == path[0] {
					lg.reportCycle(append(append([]string(nil), path...), to), reported)
				}
				continue
			}
			onPath[to] = true
			dfs(append(path, to), onPath)
			delete(onPath, to)
		}
	}
	for _, n := range nodes {
		dfs([]string{n}, map[string]bool{n: true})
	}
}

// reportCycle emits one finding for the cycle path[0] → … → path[0],
// unless a rotation of it was already reported.
func (lg *lockGraph) reportCycle(path []string, reported map[string]bool) {
	cycle := path[:len(path)-1]
	key := canonicalCycle(cycle)
	if reported[key] {
		return
	}
	reported[key] = true

	var hops []string
	var firstPos token.Pos
	for i := 0; i < len(cycle); i++ {
		from, to := cycle[i], cycle[(i+1)%len(cycle)]
		e := lg.edges[from][to]
		if firstPos == token.NoPos {
			firstPos = e.pos
		}
		hops = append(hops, fmt.Sprintf("%s -> %s (acquired at %s in %s)",
			from, to, lg.pass.Fset.Position(e.pos), e.fn))
	}
	lg.pass.Reportf(firstPos, "lock-order cycle (potential deadlock): %s", strings.Join(hops, "; "))
}

// canonicalCycle rotates the cycle so its lexicographically smallest node
// leads, giving every rotation the same key.
func canonicalCycle(cycle []string) string {
	min := 0
	for i, n := range cycle {
		if n < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "→")
}
