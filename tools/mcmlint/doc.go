// Command mcmlint is the repo's contract-enforcing static-analysis suite:
// a multi-analyzer framework over the go-vet vettool protocol that turns the
// hand-maintained invariants of the planner/serving stack into
// machine-checked diagnostics. Where the runtime test suite catches a
// violated contract after it ships, mcmlint catches it at vet time.
//
// # Analyzers
//
//	det          Determinism (PR 1/PR 7 contract). In packages annotated
//	             //mcmlint:deterministic, flags time.Now, global math/rand
//	             draws, and map-range loops that append into an output slice
//	             without a later sort — the three patterns that have
//	             historically broken byte-reproducibility of plans, sweeps,
//	             and fingerprints.
//
//	deepcopy     Cache/retention isolation (PR 4 bit-identity contract). For
//	             types annotated //mcmlint:deepcopy <helper>, any value of
//	             the helper's result type that crosses the type's storage
//	             boundary (returned from a method, assigned into a field or
//	             map slot, or placed in a composite literal) must pass
//	             through <helper> (or be nil / a fresh literal / a
//	             delegation to a sibling method). Cached plans stay
//	             immutable no matter what callers do with what they were
//	             handed.
//
//	ctxloop      Cancellation at sample boundaries (PR 3 contract). In any
//	             function that takes a context.Context, a
//	             condition-controlled for loop that never consults the
//	             context — no ctx.Err()/ctx.Done() and no callee receiving
//	             ctx — cannot stop at a sample boundary, so a cancelled Plan
//	             would run to budget exhaustion. Loops with literal trip
//	             counts and range loops (bounded by data) are exempt.
//
//	hotalloc     Zero-alloc hot loops (PR 1 contract, complementing the
//	             AllocsPerRun regression tests). In packages annotated
//	             //mcmlint:hotpath, flags per-iteration allocation patterns
//	             inside loops: append into a slice declared without
//	             capacity, fmt formatting calls (interface boxing +
//	             parsing) outside cold error paths, closures capturing
//	             outer variables (heap escape per iteration), and explicit
//	             conversions to any.
//
//	guarded      Mutex discipline, flow-sensitive (Planner/Service
//	             concurrency contract). Struct fields annotated
//	             `// guarded by <mu>` (sibling field) or
//	             `// guarded by <Type>.<mu>` (a mutex owned by another
//	             type, e.g. an entry guarded by its table's lock) must only
//	             be touched at points where every execution path holds the
//	             guard: an early Unlock followed by a read, or a Lock taken
//	             on only one branch, is reported even though the function
//	             locks the mutex "somewhere". *Locked-suffix functions are
//	             exempt inside (the caller holds the lock) but their call
//	             sites must hold a guard of the receiver's type; values
//	             still under construction are exempt; goroutine bodies
//	             start with nothing held.
//
//	lockorder    Deadlock shape (concurrency contract). Builds the unit's
//	             lock-acquisition graph — an edge A → B wherever a mutex of
//	             class B (named type + field) is acquired while a class-A
//	             mutex is held on every path — through direct Lock calls,
//	             one-level call summaries, and an approximation for
//	             imported mutex-bearing receivers. Cycles are reported with
//	             every hop's acquisition site named; re-locking the exact
//	             expression already held is an immediate self-deadlock
//	             report. *Locked methods are analyzed with their receiver's
//	             guard mutexes seeded as held.
//
//	goleak       Goroutine lifecycle (DESIGN.md §10 drain contract). Every
//	             go statement must be tied to a shutdown signal: the
//	             spawned body (function literal or same-unit declaration)
//	             observes a context (ctx.Done/ctx.Err), a channel receive
//	             or range, or a WaitGroup join — or, for callees the
//	             analyzer cannot see into, the spawn passes a context,
//	             channel, or *sync.WaitGroup argument. Anything else needs
//	             a reasoned //mcmlint:ignore goleak.
//
//	errcontract  Error routing (HTTP boundary contract). In packages
//	             annotated //mcmlint:errcontract, errors.New may appear
//	             only in package-level var declarations (sentinels), and
//	             fmt.Errorf with a constant format must carry a %w verb —
//	             otherwise the error falls out of the errors.Is sentinel
//	             mapping (ErrBusy → 429, ErrServiceClosed → 503,
//	             ErrPolicyRequired → 409, ErrInvalidRequest → 400) and a
//	             typed failure ships as a generic one. Typed errors pass
//	             untouched.
//
// # The flow engine
//
// guarded and lockorder share a small intraprocedural dataflow engine
// (cfg.go, dataflow.go): basic blocks built from each function body —
// branches, loops, switch/select, goto/labels, defer, and no-return calls
// (panic, os.Exit, Fatal-family) all modeled — and a forward must-analysis
// whose join is set intersection, run to fixpoint with a visit budget.
// "Held" facts track the exact mutex expression (s.mu), its class
// (Service.mu), and their association; deferred Unlocks keep the lock held
// to function exit; function literals are analyzed as separate contexts.
// Call effects are one-level summaries: a callee that locks on every
// return path transfers that acquisition to its call sites (with the
// receiver substituted), a callee that may unlock kills the fact — and
// summaries are never composed through a second call level, so the
// approximation direction is fixed (missed facts cost precision, never
// soundness of the must-hold claim).
//
// # Usage
//
//	mcmlint ./internal/cpsolver ./internal/search      # direct, on package dirs
//	mcmlint -enable det,guarded ./...dirs...           # subset of analyzers
//	mcmlint -json ./...dirs...                         # machine-readable output
//	go build -o /tmp/mcmlint ./tools/mcmlint
//	go vet -vettool=/tmp/mcmlint ./...                 # unitchecker protocol (CI)
//
// Under go vet the tool implements the cmd/go vettool contract: -V=full
// prints a stable identity line including the enabled-analyzer set (cmd/go
// caches results keyed on it; bump lintVersion when rules change), -flags
// reports no extra flags, and a single *.cfg argument runs one package
// build unit described by the JSON config. In vet mode the analyzer set is
// controlled by the MCMLINT_ENABLE / MCMLINT_DISABLE environment variables
// (comma-separated analyzer names), and JSON output by MCMLINT_JSON=1; in
// direct mode by -enable / -disable / -json. Findings go to stderr as
// file:line:col diagnostics tagged [mcmlint:<analyzer>]; exit status 2
// signals findings, matching vet convention.
//
// # JSON output
//
// With -json (or MCMLINT_JSON=1 under vet), findings are emitted to stdout
// as one JSON array — always, so an empty run is the valid document [] —
// and the stderr text report is suppressed. Each element is:
//
//	{
//	  "file": "internal/plancache/plancache.go",   // as reported by go/token
//	  "line": 42,                                  // 1-based
//	  "col": 7,                                    // 1-based byte column
//	  "analyzer": "guarded",                       // or "mcmlint" for directive errors
//	  "message": "... [mcmlint:guarded]",
//	  "suppressed": true,                          // omitted when false
//	  "suppression": "init happens before ..."     // the ignore reason; omitted when empty
//	}
//
// Suppressed findings are included (their reasons make the escape hatch
// auditable) but do not affect the exit status: 2 means at least one
// unsuppressed finding, 0 a clean run, 1 an operational error.
//
// # Escapes
//
// A finding is suppressed by an ignore directive on the flagged line or the
// line above it:
//
//	//mcmlint:ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore without one is itself a diagnostic, as
// is an ignore naming an unknown analyzer, an unknown //mcmlint: directive,
// or a legacy //detlint:ignore (migrate those to //mcmlint:ignore det
// <reason>). Test files (_test.go) are exempt from all analyzers: tests may
// time themselves, exercise nondeterminism, and reach into guarded state on
// purpose.
//
// It is stdlib-only (no golang.org/x/tools dependency). Type information
// comes from the export data cmd/go hands vet tools (fast); when that is
// unavailable — direct mode, or a toolchain mismatch — it falls back to
// best-effort source-importer type-checking, and any residual gaps only
// cost the type-dependent rules their findings (never false positives).
package main
