// Command mcmlint is the repo's contract-enforcing static-analysis suite:
// a multi-analyzer framework over the go-vet vettool protocol that turns the
// hand-maintained invariants of the planner/serving stack into
// machine-checked diagnostics. Where the runtime test suite catches a
// violated contract after it ships, mcmlint catches it at vet time.
//
// # Analyzers
//
//	det       Determinism (PR 1/PR 7 contract). In packages annotated
//	          //mcmlint:deterministic, flags time.Now, global math/rand
//	          draws, and map-range loops that append into an output slice
//	          without a later sort — the three patterns that have
//	          historically broken byte-reproducibility of plans, sweeps,
//	          and fingerprints.
//
//	deepcopy  Cache/retention isolation (PR 4 bit-identity contract). For
//	          types annotated //mcmlint:deepcopy <helper>, any value of the
//	          helper's result type that crosses the type's storage boundary
//	          (returned from a method, assigned into a field or map slot,
//	          or placed in a composite literal) must pass through <helper>
//	          (or be nil / a fresh literal / a delegation to a sibling
//	          method). Cached plans stay immutable no matter what callers
//	          do with what they were handed.
//
//	ctxloop   Cancellation at sample boundaries (PR 3 contract). In any
//	          function that takes a context.Context, a condition-controlled
//	          for loop that never consults the context — no ctx.Err()/
//	          ctx.Done() and no callee receiving ctx — cannot stop at a
//	          sample boundary, so a cancelled Plan would run to budget
//	          exhaustion. Loops with literal trip counts and range loops
//	          (bounded by data) are exempt.
//
//	hotalloc  Zero-alloc hot loops (PR 1 contract, complementing the
//	          AllocsPerRun regression tests). In packages annotated
//	          //mcmlint:hotpath, flags per-iteration allocation patterns
//	          inside loops: append into a slice declared without capacity,
//	          fmt formatting calls (interface boxing + parsing) outside
//	          cold error paths, closures capturing outer variables (heap
//	          escape per iteration), and explicit conversions to any.
//
//	guarded   Mutex discipline (Planner/Service concurrency contract).
//	          Struct fields annotated `// guarded by <mu>` must only be
//	          read or written inside functions that lock that mutex (or
//	          that follow the *Locked caller-holds-the-lock naming
//	          convention, or that are still constructing the value).
//
// # Usage
//
//	mcmlint ./internal/cpsolver ./internal/search      # direct, on package dirs
//	mcmlint -enable det,guarded ./...dirs...           # subset of analyzers
//	go build -o /tmp/mcmlint ./tools/mcmlint
//	go vet -vettool=/tmp/mcmlint ./...                 # unitchecker protocol (CI)
//
// Under go vet the tool implements the cmd/go vettool contract: -V=full
// prints a stable identity line including the enabled-analyzer set (cmd/go
// caches results keyed on it; bump lintVersion when rules change), -flags
// reports no extra flags, and a single *.cfg argument runs one package
// build unit described by the JSON config. In vet mode the analyzer set is
// controlled by the MCMLINT_ENABLE / MCMLINT_DISABLE environment variables
// (comma-separated analyzer names); in direct mode by -enable / -disable.
// Findings go to stderr as file:line:col diagnostics tagged
// [mcmlint:<analyzer>]; exit status 2 signals findings, matching vet
// convention.
//
// # Escapes
//
// A finding is suppressed by an ignore directive on the flagged line or the
// line above it:
//
//	//mcmlint:ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore without one is itself a diagnostic, as
// is an ignore naming an unknown analyzer, an unknown //mcmlint: directive,
// or a legacy //detlint:ignore (migrate those to //mcmlint:ignore det
// <reason>). Test files (_test.go) are exempt from all analyzers: tests may
// time themselves, exercise nondeterminism, and reach into guarded state on
// purpose.
//
// It is stdlib-only (no golang.org/x/tools dependency). Type information
// comes from the export data cmd/go hands vet tools (fast); when that is
// unavailable — direct mode, or a toolchain mismatch — it falls back to
// best-effort source-importer type-checking, and any residual gaps only
// cost the type-dependent rules their findings (never false positives).
package main
