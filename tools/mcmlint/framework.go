package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named contract check. Run inspects the type-checked
// files of a single package unit through the Pass and reports findings;
// the framework owns loading, ignore filtering, ordering, and output.
type Analyzer struct {
	// Name is the identifier used in diagnostics tags, enable flags, and
	// ignore directives.
	Name string
	// Doc is a one-line description of the contract the analyzer enforces.
	Doc string
	// Run performs the check over one package unit.
	Run func(*Pass)
}

// allAnalyzers is the registry, in reporting order. Adding an analyzer
// means appending here and bumping lintVersion (the vet cache key).
var allAnalyzers = []*Analyzer{
	detAnalyzer,
	deepcopyAnalyzer,
	ctxloopAnalyzer,
	hotallocAnalyzer,
	guardedAnalyzer,
	lockorderAnalyzer,
	goleakAnalyzer,
	errcontractAnalyzer,
}

func analyzerByName(name string) *Analyzer {
	for _, a := range allAnalyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one analyzer's view of one type-checked package unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the unit's non-test source files, with comments.
	Files []*ast.File
	// Pkg and Info are best-effort type-check results: complete under go
	// vet (export-data importer) and for stdlib-only sources, partial when
	// an import cannot be resolved. Analyzers must treat missing type
	// information as "don't know" and stay silent, never guess.
	Pkg  *types.Package
	Info *types.Info

	unit *unit
	out  *[]finding
}

// Reportf records one diagnostic at pos, tagged with the analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, finding{
		analyzer: p.Analyzer.Name,
		pos:      p.Fset.Position(pos),
		msg:      fmt.Sprintf(format, args...) + " [mcmlint:" + p.Analyzer.Name + "]",
	})
}

// HasDirective reports whether any file of the unit carries the
// package-scope directive //mcmlint:<name> (e.g. "deterministic",
// "hotpath"). Analyzers that only apply to annotated packages gate on it.
func (p *Pass) HasDirective(name string) bool { return p.unit.directives[name] }

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

type finding struct {
	analyzer string
	pos      token.Position
	msg      string
	// suppressed findings are kept (for -json consumers) but neither
	// printed to stderr nor counted toward the exit status.
	suppressed bool
	reason     string // the ignore directive's reason, when suppressed
}

// ignoreKey addresses one source line for ignore-directive matching.
type ignoreKey struct {
	file string
	line int
}

// unit is one loaded package build unit plus its scanned directives.
type unit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	// directives are package-scope markers (deterministic, hotpath, …).
	directives map[string]bool
	// ignores maps a source line to the analyzers suppressed on that line
	// and the one below it, with the mandatory reason.
	ignores map[ignoreKey]map[string]string
	// framework holds diagnostics about the directives themselves
	// (missing reason, unknown analyzer, legacy form). Not suppressible.
	framework []finding
}

func (u *unit) suppressed(f finding) (bool, string) {
	for _, line := range []int{f.pos.Line, f.pos.Line - 1} {
		if set, ok := u.ignores[ignoreKey{f.pos.Filename, line}]; ok {
			if reason, ok := set[f.analyzer]; ok {
				return true, reason
			}
		}
	}
	return false, ""
}

// scanDirectives walks every comment of the unit, recording package-scope
// markers and ignore escapes, and reporting malformed or legacy directives.
func (u *unit) scanDirectives() {
	for _, file := range u.files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				u.scanComment(c)
			}
		}
	}
}

func (u *unit) scanComment(c *ast.Comment) {
	text := c.Text
	if !strings.Contains(text, "mcmlint:") {
		if strings.Contains(text, "detlint:ignore") {
			u.frameworkf(c.Pos(), "legacy //detlint:ignore directive: migrate to //mcmlint:ignore det <reason>")
		}
		return
	}
	// Only the directive comment form //mcmlint:<verb> … is parsed; prose
	// that merely mentions mcmlint (like this file's own docs) is not.
	rest, ok := strings.CutPrefix(strings.TrimPrefix(text, "//"), "mcmlint:")
	if !ok {
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		u.frameworkf(c.Pos(), "empty //mcmlint: directive")
		return
	}
	verb, args := fields[0], fields[1:]
	switch verb {
	case "deterministic", "hotpath", "errcontract":
		// Package-scope markers take no arguments; trailing prose would
		// silently change meaning if a future version started parsing it.
		if len(args) != 0 {
			u.frameworkf(c.Pos(), "//mcmlint:%s takes no arguments (got %q)", verb, strings.Join(args, " "))
			return
		}
		u.directives[verb] = true
	case "deepcopy":
		// Validated here; interpreted by the deepcopy analyzer, which
		// reads it off the annotated type's doc comment.
		if len(args) != 1 {
			u.frameworkf(c.Pos(), "//mcmlint:deepcopy needs exactly one argument: the clone helper, e.g. //mcmlint:deepcopy cloneResult")
		}
	case "ignore":
		if len(args) == 0 {
			u.frameworkf(c.Pos(), "//mcmlint:ignore needs an analyzer name and a reason: //mcmlint:ignore <analyzer> <reason>")
			return
		}
		name := args[0]
		if analyzerByName(name) == nil {
			u.frameworkf(c.Pos(), "//mcmlint:ignore names unknown analyzer %q (have %s)", name, strings.Join(analyzerNames(allAnalyzers), ", "))
			return
		}
		if len(args) < 2 {
			u.frameworkf(c.Pos(), "//mcmlint:ignore %s has no reason: every suppression must say why the contract does not apply", name)
			return
		}
		key := ignoreKey{u.fset.Position(c.Pos()).Filename, u.fset.Position(c.Pos()).Line}
		if u.ignores[key] == nil {
			u.ignores[key] = map[string]string{}
		}
		u.ignores[key][name] = strings.Join(args[1:], " ")
	default:
		u.frameworkf(c.Pos(), "unknown //mcmlint:%s directive (have deterministic, hotpath, errcontract, deepcopy, ignore)", verb)
	}
}

func (u *unit) frameworkf(pos token.Pos, format string, args ...any) {
	u.framework = append(u.framework, finding{
		analyzer: "mcmlint",
		pos:      u.fset.Position(pos),
		msg:      fmt.Sprintf(format, args...) + " [mcmlint]",
	})
}

// exportLookup resolves import paths to export-data files using the maps
// cmd/go passes in the vet config; nil when running outside go vet.
type exportLookup struct {
	importMap   map[string]string
	packageFile map[string]string
}

func (l *exportLookup) open(path string) (io.ReadCloser, error) {
	if mapped, ok := l.importMap[path]; ok {
		path = mapped
	}
	file, ok := l.packageFile[path]
	if !ok {
		return nil, fmt.Errorf("mcmlint: no export data for %q", path)
	}
	return os.Open(file)
}

// loadUnit parses and type-checks one package build unit. Test files are
// skipped (they may exercise nondeterminism and guarded state on purpose).
// Type-checking prefers the gc export data cmd/go provides (exp != nil):
// one fast read per import instead of compiling dependencies from source.
// If that fails — or outside go vet — it falls back to the source importer,
// and any residual errors only cost type-dependent rules their findings.
func loadUnit(pkgPath, dir string, paths []string, exp *exportLookup) (*unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		if !filepath.IsAbs(p) && dir != "" {
			if _, err := os.Stat(p); err != nil {
				p = filepath.Join(dir, filepath.Base(p))
			}
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	var importers []types.Importer
	if exp != nil {
		importers = append(importers, importer.ForCompiler(fset, "gc", exp.open))
	}
	importers = append(importers, importer.ForCompiler(fset, "source", nil))

	var pkg *types.Package
	var info *types.Info
	for _, imp := range importers {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		errs := 0
		conf := types.Config{Importer: imp, Error: func(error) { errs++ }}
		pkg, _ = conf.Check(pkgPath, fset, files, info)
		if errs == 0 {
			break // clean type-check; no need to try the slower path
		}
	}

	u := &unit{
		fset:       fset,
		files:      files,
		pkg:        pkg,
		info:       info,
		directives: map[string]bool{},
		ignores:    map[ignoreKey]map[string]string{},
	}
	u.scanDirectives()
	return u, nil
}

// lintUnit runs the enabled analyzers over one loaded unit and returns
// the findings, sorted by position. Suppressed findings are included but
// flagged (JSON consumers see them with their reason); text output and
// the exit status only consider unsuppressed ones.
func lintUnit(u *unit, enabled []*Analyzer) []finding {
	if u == nil {
		return nil
	}
	out := append([]finding(nil), u.framework...)
	for _, a := range enabled {
		var raw []finding
		a.Run(&Pass{
			Analyzer: a,
			Fset:     u.fset,
			Files:    u.files,
			Pkg:      u.pkg,
			Info:     u.info,
			unit:     u,
			out:      &raw,
		})
		for _, f := range raw {
			f.suppressed, f.reason = u.suppressed(f)
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		if out[i].pos.Offset != out[j].pos.Offset {
			return out[i].pos.Offset < out[j].pos.Offset
		}
		return out[i].msg < out[j].msg
	})
	return out
}

func analyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}
