// Seeded lock-order violations: a direct AB/BA inversion, an inversion
// hidden behind a one-level call summary, one that only appears once a
// *Locked method's entry assumption is seeded, and an exact-expression
// double Lock (guaranteed self-deadlock). The ordered cluster and the
// shared RLock re-acquire pin the negative space: consistent order and
// reader re-entry must stay silent.
package fixture

import "sync"

// --- direct inversion -------------------------------------------------------

type alpha struct{ mu sync.Mutex }

type beta struct{ mu sync.Mutex }

type pair struct {
	a alpha
	b beta
}

func (x *pair) abPath() {
	x.a.mu.Lock()
	x.b.mu.Lock() // want "lock-order cycle"
	x.b.mu.Unlock()
	x.a.mu.Unlock()
}

func (x *pair) baPath() {
	x.b.mu.Lock()
	x.a.mu.Lock()
	x.a.mu.Unlock()
	x.b.mu.Unlock()
}

// --- inversion through a call summary ---------------------------------------

type gammaA struct{ mu sync.Mutex }

type gammaB struct{ mu sync.Mutex }

// lockB acquires on every path, so its one-level summary carries the
// acquisition to call sites.
func lockB(b *gammaB) { b.mu.Lock() }

func viaSummary(a *gammaA, b *gammaB) {
	a.mu.Lock()
	lockB(b) // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func viaDirect(a *gammaA, b *gammaB) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// --- inversion visible only under the *Locked entry assumption --------------

type svc struct {
	mu   sync.Mutex
	jobs []*item // guarded by mu
}

type item struct {
	mu    sync.Mutex
	state int // guarded by mu
}

// detachLocked asserts the caller holds it.mu; locking the table's mutex
// on top records item.mu -> svc.mu.
func (it *item) detachLocked(s *svc) {
	s.mu.Lock() // want "lock-order cycle"
	s.mu.Unlock()
}

func (s *svc) inverse(it *item) {
	s.mu.Lock()
	it.mu.Lock()
	it.mu.Unlock()
	s.mu.Unlock()
}

// --- exact-expression re-acquire --------------------------------------------

func relock() {
	var mu sync.Mutex
	mu.Lock()
	mu.Lock() // want "guaranteed self-deadlock"
	mu.Unlock()
}

// A shared re-acquire is legal for readers: no report.
type rw struct{ mu sync.RWMutex }

func (r *rw) doubleRead() {
	r.mu.RLock()
	r.mu.RLock()
	r.mu.RUnlock()
	r.mu.RUnlock()
}

// --- balanced helpers must not fabricate edges ------------------------------

type relA struct{ mu sync.Mutex }

type relB struct{ mu sync.Mutex }

func (a *relA) probe() { a.mu.Lock(); defer a.mu.Unlock() }

func (b *relB) probe() { b.mu.Lock(); defer b.mu.Unlock() }

// The deferred Unlock runs before probe returns, so nothing is held at
// the following Lock: these two must not report a phantom inversion.
func seqHelpers(a *relA, b *relB) {
	a.probe()
	b.mu.Lock()
	b.mu.Unlock()
}

func seqHelpersRev(a *relA, b *relB) {
	b.probe()
	a.mu.Lock()
	a.mu.Unlock()
}

// --- consistent order: an edge with no reverse is fine ----------------------

type outerL struct{ mu sync.Mutex }

type innerL struct{ mu sync.Mutex }

func ordered1(o *outerL, i *innerL) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

func ordered2(o *outerL, i *innerL) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	defer i.mu.Unlock()
}
