// Seeded goleak violations: goroutines with no shutdown signal, next to
// every accepted tie — context, done channel, range-over-channel,
// WaitGroup join, a same-unit declaration that observes a signal, a
// cross-boundary spawn handed a shutdown-capable argument, and the
// reasoned-ignore escape.
package fixture

import (
	"context"
	"sync"
)

func spin() {
	for {
	}
}

type worker struct {
	done     chan struct{}
	handler  func(chan struct{})
	handler2 func()
}

func (w *worker) drain() {
	<-w.done
}

func leaky() {
	go func() { // want "goroutine is not tied to a shutdown signal"
		for {
		}
	}()
}

func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func errTied(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
		}
	}()
}

func chanTied(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func wgTied(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

// declTied spawns a same-unit declaration whose body blocks on the done
// channel — tied through the one-level body check.
func declTied(w *worker) {
	go w.drain()
}

func declLeaky() {
	go spin() // want "goroutine is not tied to a shutdown signal"
}

// dynamicTied calls through a func field (unresolvable body) but hands it
// the done channel: assumed to honor it.
func dynamicTied(w *worker) {
	go w.handler(w.done)
}

func dynamicLeaky(w *worker) {
	go w.handler2() // want "goroutine is not tied to a shutdown signal"
}

func suppressed() {
	//mcmlint:ignore goleak exits when the test binary does
	go spin()
}
