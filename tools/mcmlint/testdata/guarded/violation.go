// Package fixture seeds mutex-discipline violations for the guarded
// golden test: annotated fields accessed without their lock.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// hits and misses share one annotation.
	hits, misses int // guarded by mu
	unguarded    int
}

// inc is the conforming shape.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// racyRead reads a guarded field without the lock.
func (c *counter) racyRead() int {
	return c.n // want "counter.n is guarded by mu"
}

// racyStats shows the shared annotation guards every name in the group.
func (c *counter) racyStats() int {
	return c.hits + c.misses // want "counter.hits is guarded by mu" // want "counter.misses is guarded by mu"
}

// statsLocked follows the caller-holds-the-lock naming convention.
func (c *counter) statsLocked() int { return c.hits + c.misses }

// newCounter constructs the value: nothing else can see it yet, so
// initialization is lock-free by design.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// bump is a plain function, not a method — the discipline still applies.
func bump(c *counter) {
	c.n++ // want "counter.n is guarded by mu"
}

// bumpSafely locks before touching the field.
func bumpSafely(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// free is never flagged: the field carries no annotation.
func free(c *counter) int { return c.unguarded }

type broken struct {
	x int // guarded by lock // want "broken.lock does not exist"
}

func useBroken(b *broken) int { return b.x }
