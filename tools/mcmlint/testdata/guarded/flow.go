// flow.go seeds the flow-sensitive cases: violations the function-scope
// syntactic check (mcmlint v2) provably passes — an early unlock followed
// by a read, a lock taken on only one branch — plus the conforming shapes
// (defer unlock, both-branch locks, one-level helper summaries) and the
// cross-type `guarded by Type.mu` form.
package fixture

import "sync"

type gauge struct {
	mu  sync.Mutex
	val int // guarded by mu
}

// unlockThenRead releases before the second read. A "does this function
// lock mu anywhere" check passes it; the dataflow does not.
func (g *gauge) unlockThenRead() int {
	g.mu.Lock()
	v := g.val
	g.mu.Unlock()
	return v + g.val // want "gauge.val is guarded by mu"
}

// conditionalUnlock leaves one path unlocked at the read.
func (g *gauge) conditionalUnlock(flush bool) int {
	g.mu.Lock()
	if flush {
		g.mu.Unlock()
	}
	v := g.val // want "gauge.val is guarded by mu"
	if !flush {
		g.mu.Unlock()
	}
	return v
}

// deferUnlock holds the lock to function exit: conforming.
func (g *gauge) deferUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// lockBoth acquires on both branches; the join still holds: conforming.
func (g *gauge) lockBoth(fast bool) int {
	if fast {
		g.mu.Lock()
	} else {
		g.mu.Lock()
	}
	v := g.val
	g.mu.Unlock()
	return v
}

// lockOneBranch acquires on only one path to the read.
func (g *gauge) lockOneBranch(fast bool) int {
	if fast {
		g.mu.Lock()
	}
	v := g.val // want "gauge.val is guarded by mu"
	if fast {
		g.mu.Unlock()
	}
	return v
}

// lockHelper locks on every return path — its one-level summary carries
// the acquisition to call sites.
func (g *gauge) lockHelper() { g.mu.Lock() }

// viaHelper holds the lock through the helper's summary: conforming.
func (g *gauge) viaHelper() int {
	g.lockHelper()
	v := g.val
	g.mu.Unlock()
	return v
}

// balancedHelper locks and defer-unlocks: its summary is a no-op for
// callers, because the deferred release runs before return.
func (g *gauge) balancedHelper() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// afterBalanced holds nothing once the helper returns.
func afterBalanced(g *gauge) int {
	g.balancedHelper()
	return g.val // want "gauge.val is guarded by mu"
}

// readLocked asserts the caller holds mu: its body is exempt.
func (g *gauge) readLocked() int { return g.val }

// callsLockedHeld satisfies the call-site half of the convention.
func (g *gauge) callsLockedHeld() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.readLocked()
}

// callsLockedUnheld calls a *Locked method with nothing held.
func (g *gauge) callsLockedUnheld() int {
	return g.readLocked() // want "readLocked asserts the caller holds gauge.mu"
}

// spawned closures cannot inherit the spawning path's lock state.
func (g *gauge) racyClosure() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.val++ // want "gauge.val is guarded by mu"
	}()
}

// owner/entry mirror the Service in-flight table: entries guarded by the
// owning table's mutex, via the cross-type `guarded by Type.mu` form.
type owner struct {
	mu      sync.Mutex
	entries []*entry // guarded by mu
}

type entry struct {
	waiters int // guarded by owner.mu
}

// addWaiter holds the owning mutex: conforming.
func (o *owner) addWaiter(e *entry) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e.waiters++
}

// addWaiterRacy touches an entry without the owning lock.
func addWaiterRacy(e *entry) {
	e.waiters++ // want "entry.waiters is guarded by owner.mu"
}

type dangling struct {
	x int // guarded by ghost.mu // want "type ghost is not declared"
}

type noField struct {
	y int // guarded by owner.missing // want "owner has no field missing"
}
