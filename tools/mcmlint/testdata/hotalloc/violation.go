// Package fixture seeds hot-loop allocation-contract violations for the
// hotalloc golden test: each flagged line allocates once per iteration in
// a package that promises zero-alloc steady state.
//
//mcmlint:hotpath
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
)

// grow reallocates on every growth step: the slice was declared without
// capacity.
func grow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "declared without capacity"
	}
	return out
}

// prealloc is the conforming shape.
func prealloc(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// format boxes its arguments and re-parses the verb string per iteration.
func format(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x)) // want "fmt.Sprintf inside a hot loop"
	}
	return out
}

// coldError is exempt: the fmt.Errorf runs at most once, on the exit path.
func coldError(xs []int) error {
	for i, x := range xs {
		if x < 0 {
			return fmt.Errorf("negative value at %d", i)
		}
	}
	return nil
}

// closures allocates a closure per iteration: the capture of x and total
// forces a heap escape.
func closures(xs []int) int {
	total := 0
	for _, x := range xs {
		f := func() int { return x + total } // want "closure captures"
		total += f()
	}
	return total
}

// hoisted is the conforming shape: the closure is built once.
func hoisted(xs []int) int {
	total := 0
	add := func(x int) { total += x }
	for _, x := range xs {
		add(x)
	}
	return total
}

// searchEach is conforming: sort.Search calls the predicate and discards
// it, so the capturing literal never escapes despite living in the loop.
func searchEach(tables [][]int, keys []int) int {
	hits := 0
	for i, key := range keys {
		t := tables[i%len(tables)]
		j := sort.Search(len(t), func(j int) bool { return t[j] >= key })
		if j < len(t) && t[j] == key {
			hits++
		}
	}
	return hits
}

// shuffleEach is conforming for the same reason: rand.Rand.Shuffle never
// retains its swap function.
func shuffleEach(rng *rand.Rand, decks [][]int) {
	for _, d := range decks {
		deck := d
		rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	}
}

// boxing converts to an interface per iteration.
func boxing(xs []int) []any {
	out := make([]any, 0, len(xs))
	for _, x := range xs {
		out = append(out, any(x)) // want "boxes the value per iteration"
	}
	return out
}
