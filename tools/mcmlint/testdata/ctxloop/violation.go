// Package fixture seeds cancellation-contract violations for the ctxloop
// golden test: sample-budget loops in context-taking functions must
// consult the context every iteration.
package fixture

import "context"

func evalOnce() {}

// search burns its whole budget even after cancellation: nothing in the
// loop ever looks at ctx.
func search(ctx context.Context, budget int) {
	samples := 0
	for samples < budget { // want "loop never consults ctx"
		evalOnce()
		samples++
	}
}

// searchChecked is the contract-conforming shape: best-so-far plus
// ctx.Err() at the sample boundary.
func searchChecked(ctx context.Context, budget int) error {
	samples := 0
	for samples < budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		evalOnce()
		samples++
	}
	return nil
}

// delegated passes ctx to the callee, which owns the boundary check.
func delegated(ctx context.Context, budget int) {
	samples := 0
	for samples < budget {
		step(ctx)
		samples++
	}
}

func step(ctx context.Context) { _ = ctx.Err() }

// selecting observes cancellation through the Done channel.
func selecting(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-work:
			evalOnce()
		}
	}
}

// retries is exempt: a literal trip count is a bounded retry, not a
// sample budget.
func retries(ctx context.Context) {
	for i := 0; i < 3; i++ {
		evalOnce()
	}
}

// rangeLoop is exempt: bounded by data, not by a budget.
func rangeLoop(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// noCtx is exempt: without a context parameter there is nothing to check.
func noCtx(budget int) {
	for i := 0; i < budget; i++ {
		evalOnce()
	}
}
