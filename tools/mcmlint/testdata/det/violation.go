// Package fixture seeds determinism-contract violations for the det
// analyzer's golden test: each `want` line is a pattern that has
// historically broken byte-reproducibility of plans and fingerprints.
//
//mcmlint:deterministic
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() time.Time { return time.Now() } // want "time.Now in a deterministic package"

func draw() int { return rand.Intn(4) } // want "global math/rand state"

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand state"
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "ranging over a map"
		out = append(out, k)
	}
	return out
}

// sortedKeys is the accepted deterministic idiom: collect, then sort.
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// seeded is the accepted RNG idiom: every draw flows from an explicit
// *rand.Rand derived from the scenario seed.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(4)
}

// sliceRange is fine: slice iteration order is deterministic.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

//mcmlint:ignore det fixture: boot stamp is allowed to be wall-clock here
func ignoredStamp() time.Time { return time.Now() }
