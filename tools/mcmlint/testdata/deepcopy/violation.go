// Package fixture seeds deepcopy-contract violations for the golden test:
// a miniature of the real plan cache, where every result crossing the
// storage boundary must pass through the clone helper.
package fixture

import "sync"

type result struct {
	partition []int
	history   []float64
}

// cloneRes deep-copies a result; the annotation below names it as the
// store's boundary helper.
func cloneRes(r *result) *result {
	if r == nil {
		return nil
	}
	c := *r
	c.partition = append([]int(nil), r.partition...)
	c.history = append([]float64(nil), r.history...)
	return &c
}

// store is an LRU-like retention boundary: entries must stay immutable no
// matter what callers do with what they were handed.
//
//mcmlint:deepcopy cloneRes
type store struct {
	mu    sync.Mutex
	items map[string]*result
}

// get leaks the stored pointer: the caller can mutate the cache entry.
func (s *store) get(key string) (*result, bool) {
	r, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return r, true // want "value returned from get without passing through cloneRes"
}

// getClone is the contract-conforming read path.
func (s *store) getClone(key string) (*result, bool) {
	r, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return cloneRes(r), true
}

// put retains the caller's pointer: the caller can mutate the entry later.
func (s *store) put(key string, r *result) {
	s.items[key] = r // want "value stored by put without passing through cloneRes"
}

// putClone is the contract-conforming write path.
func (s *store) putClone(key string, r *result) {
	s.items[key] = cloneRes(r)
}

type entry struct {
	key string
	res *result
}

// retain smuggles the caller's pointer in through a composite literal.
func (s *store) retain(key string, r *result, sink map[string]*entry) {
	sink[key] = &entry{key: key, res: r} // want "value retained in a composite literal by retain"
}

// retainClone is the conforming composite-literal path.
func (s *store) retainClone(key string, r *result, sink map[string]*entry) {
	sink[key] = &entry{key: key, res: cloneRes(r)}
}

// delegate may hand out a sibling method's result: the sibling is itself
// checked, so delegation does not launder a violation.
func (s *store) delegate(key string) (*result, bool) { return s.getClone(key) }

// fresh may return a brand-new literal: it is owned, not shared.
func (s *store) fresh() *result { return &result{} }
