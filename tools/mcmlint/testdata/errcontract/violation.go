// Seeded errcontract violations: a naked errors.New in a function body,
// a %v wrap, and a format whose only percent signs are escapes — next to
// the conforming shapes (package-level sentinels, %w wraps including
// multi-%w, typed errors, and a reasoned ignore).
//
//mcmlint:errcontract
package fixture

import (
	"errors"
	"fmt"
)

var (
	ErrNotFound = errors.New("fixture: not found")
	ErrBusy     = errors.New("fixture: busy")
)

func wrapped(id string) error {
	return fmt.Errorf("%w: job %s", ErrNotFound, id)
}

func naked() error {
	return errors.New("boom") // want "errors.New outside a package-level sentinel declaration"
}

func vWrapped(err error) error {
	return fmt.Errorf("job failed: %v", err) // want "fmt.Errorf without %w"
}

func escaped(pct int) error {
	return fmt.Errorf("load at 100%%, budget %d", pct) // want "fmt.Errorf without %w"
}

type opError struct{ op string }

func (e *opError) Error() string { return e.op }

// typed errors route through errors.As by construction: conforming.
func typed(op string) error {
	return &opError{op: op}
}

func multiWrap(a, b error) error {
	return fmt.Errorf("two causes: %w and %w", a, b)
}

func suppressed() error {
	//mcmlint:ignore errcontract transient probe error, never routed
	return errors.New("probe")
}
