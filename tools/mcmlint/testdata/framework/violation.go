// Package fixture seeds directive misuse for the framework's own checks:
// every malformed escape is itself a diagnostic, and a malformed ignore
// does not suppress the finding it sat next to.
//
//mcmlint:deterministic
package fixture

import "time"

// want "has no reason"
//
//mcmlint:ignore det
func stamped() time.Time { return time.Now() } // want "time.Now"

// want "unknown analyzer"
//
//mcmlint:ignore nosuchanalyzer because reasons
func alsoStamped() time.Time { return time.Now() } // want "time.Now"

// want "legacy"
//
//detlint:ignore boot stamp
func legacy() time.Time { return time.Now() } // want "time.Now"

// want "unknown //mcmlint:frobnicate"
//
//mcmlint:frobnicate
func frob() {}

// want "takes no arguments"
//
//mcmlint:deterministic extra prose
func marked() {}

//mcmlint:ignore det fixture: the escape path — wall-clock allowed here
func suppressed() time.Time { return time.Now() }
