package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// lintVersion keys cmd/go's vet result cache (via -V=full): bump it
// whenever any analyzer's rules change, or stale results will be served.
const lintVersion = "v3.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var enable, disable string
	var wantVersion, wantFlags, jsonOut bool
	var rest []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			wantVersion = true
		case a == "-flags":
			wantFlags = true
		case a == "-json":
			jsonOut = true
		case strings.HasPrefix(a, "-enable="):
			enable = strings.TrimPrefix(a, "-enable=")
		case strings.HasPrefix(a, "-disable="):
			disable = strings.TrimPrefix(a, "-disable=")
		default:
			rest = append(rest, a)
		}
	}
	// Vet mode has no flag channel from the go vet command line, so the
	// analyzer set comes from the environment there; explicit flags win.
	if enable == "" {
		enable = os.Getenv("MCMLINT_ENABLE")
	}
	if disable == "" {
		disable = os.Getenv("MCMLINT_DISABLE")
	}
	if os.Getenv("MCMLINT_JSON") != "" {
		jsonOut = true
	}
	enabled, err := selectAnalyzers(enable, disable)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcmlint: %v\n", err)
		return 1
	}
	switch {
	case wantVersion:
		// cmd/go tool-identity probe; the output is the cache key, so the
		// enabled set must be part of it.
		fmt.Printf("mcmlint version %s enabled=%s\n", lintVersion, strings.Join(analyzerNames(enabled), ","))
		return 0
	case wantFlags:
		// cmd/go flag discovery: no flags are exposed through go vet
		// (use MCMLINT_ENABLE / MCMLINT_DISABLE there).
		fmt.Println("[]")
		return 0
	case len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg"):
		return runVetUnit(rest[0], enabled, jsonOut)
	case len(rest) == 0:
		fmt.Fprintln(os.Stderr, "usage: mcmlint [-json] [-enable a,b] [-disable c] <package-dir>... | mcmlint <unit>.cfg (go vet -vettool)")
		return 1
	default:
		return runDirs(rest, enabled, jsonOut)
	}
}

// selectAnalyzers resolves the enable/disable comma lists against the
// registry: an empty enable list means all analyzers; disable then removes.
func selectAnalyzers(enable, disable string) ([]*Analyzer, error) {
	picked := allAnalyzers
	if enable != "" {
		set, err := nameSet(enable)
		if err != nil {
			return nil, err
		}
		picked = nil
		for _, a := range allAnalyzers {
			if set[a.Name] {
				picked = append(picked, a)
			}
		}
	}
	if disable != "" {
		set, err := nameSet(disable)
		if err != nil {
			return nil, err
		}
		var kept []*Analyzer
		for _, a := range picked {
			if !set[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no analyzers enabled (have %s)", strings.Join(analyzerNames(allAnalyzers), ", "))
	}
	return picked, nil
}

func nameSet(csv string) (map[string]bool, error) {
	set := map[string]bool{}
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if analyzerByName(name) == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(analyzerNames(allAnalyzers), ", "))
		}
		set[name] = true
	}
	return set, nil
}

// vetConfig mirrors the fields of cmd/go's vet config JSON that mcmlint
// needs (the full struct is x/tools' unitchecker.Config; unknown fields
// are ignored by encoding/json). ImportMap and PackageFile let the loader
// type-check against prebuilt export data instead of compiling
// dependencies from source.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// runVetUnit handles one go-vet build unit. Dependency units arrive with
// VetxOnly=true and are skipped (mcmlint exports no facts); target units
// are parsed, type-checked, and linted. The facts file must exist
// afterwards or cmd/go reports the tool as failed, so an empty one is
// always written.
func runVetUnit(cfgPath string, enabled []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcmlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mcmlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "mcmlint: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	u, err := loadUnit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, &exportLookup{
		importMap:   cfg.ImportMap,
		packageFile: cfg.PackageFile,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcmlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	writeVetx()
	return report(lintUnit(u, enabled), jsonOut)
}

// runDirs lints package directories given directly on the command line.
func runDirs(dirs []string, enabled []*Analyzer, jsonOut bool) int {
	var all []finding
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcmlint: %v\n", err)
			return 1
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			continue
		}
		u, err := loadUnit(dir, dir, files, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcmlint: %s: %v\n", dir, err)
			return 1
		}
		all = append(all, lintUnit(u, enabled)...)
	}
	return report(all, jsonOut)
}

// jsonFinding is the -json wire shape of one diagnostic; see doc.go for
// the schema contract.
type jsonFinding struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Suppressed  bool   `json:"suppressed,omitempty"`
	Suppression string `json:"suppression,omitempty"`
}

// report prints the findings — human-readable on stderr, or a JSON array
// on stdout with -json / MCMLINT_JSON (suppressed findings included there
// with their reasons). The exit status counts only unsuppressed findings.
func report(findings []finding, jsonOut bool) int {
	active := 0
	if jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:        f.pos.Filename,
				Line:        f.pos.Line,
				Col:         f.pos.Column,
				Analyzer:    f.analyzer,
				Message:     f.msg,
				Suppressed:  f.suppressed,
				Suppression: f.reason,
			})
			if !f.suppressed {
				active++
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mcmlint: %v\n", err)
			return 1
		}
	} else {
		for _, f := range findings {
			if f.suppressed {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: %s\n", f.pos, f.msg)
			active++
		}
	}
	if active == 0 {
		return 0
	}
	return 2
}
