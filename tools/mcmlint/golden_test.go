package main

// Hand-rolled analysistest-style golden harness: each testdata/<analyzer>
// directory is one fixture package seeded with contract violations. A
// `// want "substring"` comment binds an expected diagnostic to its line —
// trailing on the offending line, or standalone on the line above (for
// diagnostics that point at a directive comment). The test fails on any
// unmatched expectation (the seeded violation was not caught) and on any
// unexpected diagnostic (a false positive crept in).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants extracts line → expected-substring bindings from one fixture
// file. A want on a standalone comment line applies to the next line.
func parseWants(t *testing.T, path string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int][]string{}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ms := wantRE.FindAllStringSubmatch(line, -1)
		if len(ms) == 0 {
			continue
		}
		lineNo := i + 1
		if strings.HasPrefix(strings.TrimSpace(line), "//") {
			// Standalone comment: the expectation is about the next
			// content line (gofmt may pad doc comments with bare // lines).
			lineNo++
			for lineNo-1 < len(lines) && strings.TrimSpace(lines[lineNo-1]) == "//" {
				lineNo++
			}
		}
		for _, m := range ms {
			wants[lineNo] = append(wants[lineNo], m[1])
		}
	}
	return wants
}

// runGolden lints one fixture directory with a single analyzer (framework
// diagnostics always included) and diffs findings against the wants.
func runGolden(t *testing.T, analyzer *Analyzer, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	wants := map[string]map[int][]string{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		p := filepath.Join(dir, e.Name())
		files = append(files, p)
		wants[p] = parseWants(t, p)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	u, err := loadUnit(dir, dir, files, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings := lintUnit(u, []*Analyzer{analyzer})

	matched := map[string]map[int][]bool{}
	for file, byLine := range wants {
		matched[file] = map[int][]bool{}
		for line, subs := range byLine {
			matched[file][line] = make([]bool, len(subs))
		}
	}
	for _, f := range findings {
		if f.suppressed {
			continue // kept for -json consumers; a want must not match it
		}
		ok := false
		for i, sub := range wants[f.pos.Filename][f.pos.Line] {
			if strings.Contains(f.msg, sub) {
				matched[f.pos.Filename][f.pos.Line][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", f.pos.Filename, f.pos.Line, f.msg)
		}
	}
	for file, byLine := range wants {
		for line, subs := range byLine {
			for i, sub := range subs {
				if !matched[file][line][i] {
					t.Errorf("missing diagnostic at %s:%d: want a finding containing %q", file, line, sub)
				}
			}
		}
	}
	if t.Failed() {
		var got []string
		for _, f := range findings {
			got = append(got, fmt.Sprintf("%s:%d: %s", f.pos.Filename, f.pos.Line, f.msg))
		}
		t.Logf("all findings:\n%s", strings.Join(got, "\n"))
	}
}

func TestGoldenDet(t *testing.T) { runGolden(t, detAnalyzer, filepath.Join("testdata", "det")) }
func TestGoldenDeepcopy(t *testing.T) {
	runGolden(t, deepcopyAnalyzer, filepath.Join("testdata", "deepcopy"))
}
func TestGoldenCtxloop(t *testing.T) {
	runGolden(t, ctxloopAnalyzer, filepath.Join("testdata", "ctxloop"))
}
func TestGoldenHotalloc(t *testing.T) {
	runGolden(t, hotallocAnalyzer, filepath.Join("testdata", "hotalloc"))
}
func TestGoldenGuarded(t *testing.T) {
	runGolden(t, guardedAnalyzer, filepath.Join("testdata", "guarded"))
}
func TestGoldenLockorder(t *testing.T) {
	runGolden(t, lockorderAnalyzer, filepath.Join("testdata", "lockorder"))
}
func TestGoldenGoleak(t *testing.T) {
	runGolden(t, goleakAnalyzer, filepath.Join("testdata", "goleak"))
}
func TestGoldenErrcontract(t *testing.T) {
	runGolden(t, errcontractAnalyzer, filepath.Join("testdata", "errcontract"))
}

// TestGoldenFramework exercises the directive machinery itself: malformed
// ignores, unknown analyzers/directives, the legacy //detlint:ignore form,
// and the working escape path. det is enabled so the fixture can prove
// that a malformed ignore does NOT suppress and a well-formed one does.
func TestGoldenFramework(t *testing.T) {
	runGolden(t, detAnalyzer, filepath.Join("testdata", "framework"))
}
