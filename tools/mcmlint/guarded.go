package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// guardedAnalyzer enforces the mutex discipline the Planner/Service
// concurrency contract rests on — flow-sensitively. A struct field
// annotated with a trailing (or doc) comment
//
//	jobs map[string]*Job // guarded by mu
//
// must only be read or written while that mutex is held on every path
// reaching the access. The analysis runs the shared CFG + must-hold-lock
// dataflow (see cfg.go/dataflow.go): Lock/RLock acquire, Unlock/RUnlock
// release, `defer mu.Unlock()` keeps the lock held to function exit, and
// branches meet by intersection — so an early unlock followed by a field
// read, or a lock taken on only one branch, is caught where the
// function-scope syntactic check of mcmlint v2 could not see it.
//
// Two guard forms are recognized:
//
//	n int            // guarded by mu          (sibling field of the struct)
//	leader *Job      // guarded by Service.mu  (another type's mutex)
//
// The sibling form is satisfied by holding that exact mutex expression
// (e.g. s.mu for an access through s) or any mutex of the same class
// (Type.field); the cross-type form requires the named class to be held.
//
// Helper calls are bridged by one-level summaries: calling a function
// that locks on every return path adds its facts at the call site, and
// calling one that may unlock drops them. Functions whose name ends in
// "Locked" assert the caller already holds the lock: their bodies are
// exempt, but every call site must hold one of the receiver type's guard
// mutexes.
//
// Escapes: a function that itself constructs the value (x := &T{…} /
// new(T)) may initialize fields before the value is shared, and
// //mcmlint:ignore guarded <reason> covers everything else.
var guardedAnalyzer = &Analyzer{
	Name: "guarded",
	Doc:  "fields annotated `// guarded by <mu>` must only be accessed while that mutex is held on every path",
	Run:  runGuarded,
}

var guardedByRE = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_]\w*(?:\.[A-Za-z_]\w*)?)\b`)

// guardSpec is one parsed `guarded by` annotation.
type guardSpec struct {
	mu    string // mutex field name
	owner string // declaring type of the mutex for the dotted form; "" = sibling
}

// class renders the guard as a lock-class fact body ("Service.mu").
func (g guardSpec) class(siblingType string) string {
	if g.owner != "" {
		return g.owner + "." + g.mu
	}
	return siblingType + "." + g.mu
}

func (g guardSpec) String() string {
	if g.owner != "" {
		return g.owner + "." + g.mu
	}
	return g.mu
}

func runGuarded(pass *Pass) {
	if pass.Info == nil {
		return
	}
	guards, issues := guardedFields(pass)
	// Annotation problems are guarded's to report; lockorder reuses the
	// collection for seeding and must not duplicate them.
	for _, iss := range issues {
		pass.Reportf(iss.pos, "%s", iss.msg)
	}
	if len(guards) == 0 {
		return
	}
	// guardClasses[T] is the set of lock classes protecting T's annotated
	// fields — what a call to one of T's *Locked methods asserts is held.
	guardClasses := map[string][]string{}
	for typeName, fields := range guards {
		seen := map[string]bool{}
		for _, spec := range fields {
			cls := spec.class(typeName)
			if !seen[cls] {
				seen[cls] = true
				guardClasses[typeName] = append(guardClasses[typeName], cls)
			}
		}
		sort.Strings(guardClasses[typeName])
	}
	sums := computeSummaries(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Caller-holds-the-lock naming convention: the body (and its
			// closures) is the caller's critical section, not its own.
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Name.Name != "Locked" {
				continue
			}
			ctx := &guardedContext{
				pass:         pass,
				fnName:       fd.Name.Name,
				guards:       guards,
				guardClasses: guardClasses,
				sums:         sums,
				constructed:  constructedLocals(fd.Body),
			}
			ctx.check(fd.Body, facts{})
		}
	}
}

// guardedContext carries what one function's flow check needs.
type guardedContext struct {
	pass         *Pass
	fnName       string
	guards       map[string]map[string]guardSpec
	guardClasses map[string][]string
	sums         map[types.Object]*funcSummary
	constructed  map[string]bool
}

// check runs the must-hold-lock analysis over one body and reports
// unguarded accesses. Function literals inside the body are re-checked as
// separate contexts with no entry facts: a closure may run on another
// goroutine, so it cannot inherit the spawning path's lock state.
func (c *guardedContext) check(body *ast.BlockStmt, entry facts) {
	g := buildCFG(body)
	step := func(n ast.Node, f facts) {
		lockWalk(n, func(call *ast.CallExpr) {
			if ev, ok := asLockEvent(c.pass, call); ok {
				ev.apply(f)
				return
			}
			applyCallSummary(c.pass, c.sums, call, f)
		})
	}
	in := mustFlow(g, entry, step)
	var lits []*ast.FuncLit
	for _, b := range g.blocks {
		f := in[b]
		if f == nil {
			continue // unreachable (or budget-truncated): unknown state, stay silent
		}
		f = cloneFacts(f)
		for _, n := range b.nodes {
			c.checkNode(n, f)
			step(n, f)
			ast.Inspect(n, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lits = append(lits, lit)
					return false
				}
				return true
			})
		}
	}
	sub := &guardedContext{
		pass:         c.pass,
		fnName:       c.fnName,
		guards:       c.guards,
		guardClasses: c.guardClasses,
		sums:         c.sums,
		constructed:  map[string]bool{}, // a closure's captures may have escaped
	}
	for _, lit := range lits {
		sub.check(lit.Body, facts{})
	}
}

// checkNode verifies every guarded field access and *Locked call in one
// CFG node against the facts holding when the node executes. Function
// literals are pruned (checked as separate contexts).
func (c *guardedContext) checkNode(n ast.Node, f facts) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			c.checkAccess(n, f)
		case *ast.CallExpr:
			c.checkLockedCall(n, f)
		}
		return true
	})
}

func (c *guardedContext) checkAccess(sel *ast.SelectorExpr, f facts) {
	baseT := c.pass.TypeOf(sel.X)
	named := namedTypeName(baseT)
	if named == "" {
		return
	}
	spec, ok := c.guards[named][sel.Sel.Name]
	if !ok {
		return
	}
	if f["c:"+spec.class(named)] {
		return
	}
	if spec.owner == "" {
		if base := exprPath(sel.X); base != "" && f["e:"+base+"."+spec.mu] {
			return
		}
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.constructed[id.Name] {
		return
	}
	c.pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s does not hold it on every path to this access: lock it, use the *Locked naming convention if the caller holds it, or annotate why the access is safe",
		named, sel.Sel.Name, spec, c.fnName)
}

// checkLockedCall enforces the other half of the *Locked convention: a
// call to T's fooLocked method asserts the caller holds one of T's guard
// mutexes, so calling it without one defeats the analysis.
func (c *guardedContext) checkLockedCall(call *ast.CallExpr, f facts) {
	obj := calleeObject(c.pass, call)
	fn, ok := obj.(*types.Func)
	if !ok || !strings.HasSuffix(fn.Name(), "Locked") || fn.Name() == "Locked" {
		return
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return
	}
	typeName := namedTypeName(recv.Type())
	classes := c.guardClasses[typeName]
	if len(classes) == 0 {
		return
	}
	for _, cls := range classes {
		if f["c:"+cls] {
			return
		}
	}
	if base := callRecvPath(call); base != "" && c.constructed[strings.SplitN(base, ".", 2)[0]] {
		return
	}
	c.pass.Reportf(call.Pos(), "%s asserts the caller holds %s, but no path to this call holds it",
		fn.Name(), strings.Join(classes, " or "))
}

// constructedLocals collects local variables assigned from construction
// expressions (&T{…}, T{…}, new(T)): the value cannot be shared with
// another goroutine yet, so field initialization is lock-free by design.
func constructedLocals(body *ast.BlockStmt) map[string]bool {
	constructed := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isFreshValue(rhs) {
				constructed[id.Name] = true
			}
		}
		return true
	})
	return constructed
}

// guardIssue is one malformed `guarded by` annotation, reported by the
// guarded analyzer only.
type guardIssue struct {
	pos token.Pos
	msg string
}

// guardedFields collects `guarded by` annotations per struct type. The
// sibling form must name a sibling field; the dotted form must name a
// type declared in this package together with one of its fields —
// violations come back as issues, annotations that fail drop out of the
// collection.
func guardedFields(pass *Pass) (map[string]map[string]guardSpec, []guardIssue) {
	structs := map[string]map[string]bool{} // type name -> field set
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				fields := map[string]bool{}
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						fields[n.Name] = true
					}
				}
				structs[ts.Name.Name] = fields
			}
		}
	}

	out := map[string]map[string]guardSpec{}
	var issues []guardIssue
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, f := range st.Fields.List {
					g, ok := guardAnnotation(f)
					if !ok {
						continue
					}
					if g.owner == "" {
						if !structs[ts.Name.Name][g.mu] {
							issues = append(issues, guardIssue{f.Pos(), fmt.Sprintf("field is `guarded by %s` but %s.%s does not exist: the guard must be a sibling field (or use the Type.field form)", g.mu, ts.Name.Name, g.mu)})
							continue
						}
					} else {
						ownerFields, declared := structs[g.owner]
						if !declared {
							issues = append(issues, guardIssue{f.Pos(), fmt.Sprintf("field is `guarded by %s.%s` but type %s is not declared in this package", g.owner, g.mu, g.owner)})
							continue
						}
						if !ownerFields[g.mu] {
							issues = append(issues, guardIssue{f.Pos(), fmt.Sprintf("field is `guarded by %s.%s` but %s has no field %s", g.owner, g.mu, g.owner, g.mu)})
							continue
						}
					}
					for _, n := range f.Names {
						if out[ts.Name.Name] == nil {
							out[ts.Name.Name] = map[string]guardSpec{}
						}
						out[ts.Name.Name][n.Name] = g
					}
				}
			}
		}
	}
	return out, issues
}

func guardAnnotation(f *ast.Field) (guardSpec, bool) {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			if owner, mu, ok := strings.Cut(m[1], "."); ok {
				return guardSpec{mu: mu, owner: owner}, true
			}
			return guardSpec{mu: m[1]}, true
		}
	}
	return guardSpec{}, false
}

// isFreshValue recognizes construction expressions: the value cannot be
// shared with another goroutine yet, so field initialization is lock-free
// by design.
func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
