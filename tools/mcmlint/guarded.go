package main

import (
	"go/ast"
	"go/types"
	"regexp"
)

// guardedAnalyzer enforces the mutex discipline the Planner/Service
// concurrency contract rests on. A struct field annotated with a trailing
// (or doc) comment
//
//	jobs map[string]*Job // guarded by mu
//
// must only be read or written inside functions that lock that mutex —
// anywhere in the function body; the analyzer checks lock acquisition, not
// critical-section extent. Three escapes reflect the repo's conventions:
//
//   - functions whose name ends in "Locked" assert the caller holds the
//     lock (registerJobLocked);
//   - a function that itself constructs the value (x := &T{…} / new(T))
//     may initialize fields before the value is shared;
//   - //mcmlint:ignore guarded <reason> for everything else.
//
// The named mutex must be a sibling field of the same struct; fields
// guarded by another object's mutex (flight → Service.mu) are documented
// prose, not checkable annotations, and are left alone.
var guardedAnalyzer = &Analyzer{
	Name: "guarded",
	Doc:  "fields annotated `// guarded by <mu>` must only be accessed by functions that lock that mutex",
	Run:  runGuarded,
}

var guardedByRE = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_]\w*)\b`)

func runGuarded(pass *Pass) {
	if pass.Info == nil {
		return
	}
	guards := guardedFields(pass)
	if len(guards) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedFunc(pass, fd, guards)
		}
	}
}

// guardedFields collects `guarded by <mu>` field annotations per struct
// type, validating that the named mutex is a sibling field.
func guardedFields(pass *Pass) map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				fieldNames := map[string]bool{}
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						fieldNames[n.Name] = true
					}
				}
				for _, f := range st.Fields.List {
					mu := guardAnnotation(f)
					if mu == "" {
						continue
					}
					if !fieldNames[mu] {
						pass.Reportf(f.Pos(), "field is `guarded by %s` but %s.%s does not exist: the guard must be a sibling field", mu, ts.Name.Name, mu)
						continue
					}
					for _, n := range f.Names {
						if out[ts.Name.Name] == nil {
							out[ts.Name.Name] = map[string]string{}
						}
						out[ts.Name.Name][n.Name] = mu
					}
				}
			}
		}
	}
	return out
}

func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkGuardedFunc(pass *Pass, fd *ast.FuncDecl, guards map[string]map[string]string) {
	// Caller-holds-the-lock naming convention.
	if n := fd.Name.Name; len(n) > len("Locked") && n[len(n)-len("Locked"):] == "Locked" {
		return
	}
	locked := map[string]bool{}      // mutex name -> fd body contains a Lock on it
	constructed := map[string]bool{} // local vars assigned from &T{…}/T{…}/new(T)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock":
					if inner, ok := sel.X.(*ast.SelectorExpr); ok {
						locked[inner.Sel.Name] = true
					} else if id, ok := sel.X.(*ast.Ident); ok {
						locked[id.Name] = true // mutex passed as a local / param
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isFreshValue(rhs) {
					constructed[id.Name] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		baseT := pass.TypeOf(sel.X)
		if baseT == nil {
			return true
		}
		if ptr, ok := baseT.(*types.Pointer); ok {
			baseT = ptr.Elem()
		}
		named, ok := baseT.(*types.Named)
		if !ok {
			return true
		}
		mu, ok := guards[named.Obj().Name()][sel.Sel.Name]
		if !ok {
			return true
		}
		if locked[mu] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && constructed[id.Name] {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s never locks it: lock %s, use the *Locked naming convention if the caller holds it, or annotate why the access is safe",
			named.Obj().Name(), sel.Sel.Name, mu, fd.Name.Name, mu)
		return true
	})
}

// isFreshValue recognizes construction expressions: the value cannot be
// shared with another goroutine yet, so field initialization is lock-free
// by design.
func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
