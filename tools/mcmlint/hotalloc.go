package main

import (
	"go/ast"
	"go/types"
)

// hotallocAnalyzer complements the AllocsPerRun regression tests: those
// pin the allocation count of specific entry points after the fact, this
// flags the per-iteration allocation patterns at the line that introduces
// them. It only runs in packages annotated //mcmlint:hotpath (mat,
// cpsolver, analyze, parallel — the zero-alloc PR 1 contract). Inside any
// loop it reports:
//
//   - append into a slice the function declared without capacity
//     (`var s []T` / `s := []T{}`): every growth step reallocates and
//     copies; preallocate with make(len/cap) outside the loop;
//   - fmt formatting calls outside cold paths (arguments box to
//     interfaces and the verb string is re-parsed per iteration; calls
//     inside return/panic error paths are exempt — they run once);
//   - function literals that capture enclosing-function variables: the
//     capture forces the closure (and captured slots) to escape to the
//     heap on every iteration; hoist the literal or pass values as
//     parameters. Literals handed directly to a call-and-discard callee
//     (the sort package's predicate takers, rand.Rand.Shuffle) are
//     exempt — the callee never retains the closure, so escape analysis
//     keeps it on the stack;
//   - explicit conversions to an interface type: boxing allocates per
//     iteration.
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-iteration allocation patterns inside loops of //mcmlint:hotpath packages",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	if !pass.HasDirective("hotpath") {
		return
	}
	for _, file := range pass.Files {
		fmtName := importName(file, "fmt")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHotFunc(pass, fd, fmtName)
		}
	}
}

// checkHotFunc inspects one function with ancestor context: loop depth is
// the number of enclosing for/range statements inside the innermost
// enclosing function (a func literal resets it — its body runs when
// called, not per iteration of the loop that builds it), and a node is
// cold when an ancestor is a return, defer, or panic (one-shot exit
// paths, not steady-state iterations).
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, fmtName string) {
	decls := sliceDecls(fd)
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		depth, cold := ancestorContext(stack[:len(stack)-1])
		switch n := n.(type) {
		case *ast.AssignStmt:
			if depth > 0 {
				checkHotAppend(pass, n, decls)
			}
		case *ast.CallExpr:
			if depth == 0 || cold {
				return true
			}
			if fmtName != "" {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if base, ok := sel.X.(*ast.Ident); ok && base.Name == fmtName {
						pass.Reportf(n.Pos(), "fmt.%s inside a hot loop: arguments box to interfaces and the format is re-parsed per iteration; move formatting to the cold path", sel.Sel.Name)
					}
				}
			}
			checkInterfaceConversion(pass, n)
		case *ast.FuncLit:
			if depth > 0 && !cold && !handedToNonRetainingCall(pass, stack, n) {
				if name := capturedVar(pass, fd, n); name != "" {
					pass.Reportf(n.Pos(), "closure captures %s and escapes to the heap on every iteration; hoist it out of the loop or pass values as parameters", name)
				}
			}
		}
		return true
	})
}

// ancestorContext derives (loop depth, coldness) from the ancestor stack,
// resetting both at the innermost func literal boundary.
func ancestorContext(ancestors []ast.Node) (depth int, cold bool) {
	for i := len(ancestors) - 1; i >= 0; i-- {
		switch a := ancestors[i].(type) {
		case *ast.FuncLit:
			return depth, cold
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.ReturnStmt, *ast.DeferStmt:
			cold = true
		case *ast.CallExpr:
			if id, ok := a.Fun.(*ast.Ident); ok && id.Name == "panic" {
				cold = true
			}
		}
	}
	return depth, cold
}

// sliceDecl records how a function-local slice variable was declared.
type sliceDecl struct {
	preallocated bool
}

// sliceDecls collects the function's local slice declarations. Only
// declarations whose allocation behavior is evident are recorded:
// `var s []T` and empty-literal forms are growth-from-nil, any make() is
// treated as preallocated, everything else (results of calls, parameters)
// is unknown and never flagged.
func sliceDecls(fd *ast.FuncDecl) map[string]sliceDecl {
	out := map[string]sliceDecl{}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				if _, ok := vs.Type.(*ast.ArrayType); ok {
					if at := vs.Type.(*ast.ArrayType); at.Len == nil { // slice, not array
						for _, name := range vs.Names {
							out[name.Name] = sliceDecl{preallocated: false}
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := rhs.(type) {
				case *ast.CompositeLit:
					if at, ok := rhs.Type.(*ast.ArrayType); ok && at.Len == nil && len(rhs.Elts) == 0 {
						out[id.Name] = sliceDecl{preallocated: false}
					}
				case *ast.CallExpr:
					if fn, ok := rhs.Fun.(*ast.Ident); ok && fn.Name == "make" {
						out[id.Name] = sliceDecl{preallocated: true}
					}
				}
			}
		}
		return true
	})
	return out
}

// checkHotAppend flags `s = append(s, …)` in a loop when s was declared
// in this function without capacity.
func checkHotAppend(pass *Pass, as *ast.AssignStmt, decls map[string]sliceDecl) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if d, known := decls[id.Name]; known && !d.preallocated {
			pass.Reportf(call.Pos(), "append to %s inside a hot loop, but it was declared without capacity: preallocate with make(…, 0, n) outside the loop", id.Name)
		}
	}
}

// checkInterfaceConversion flags explicit conversions T(x) where T is an
// interface type and x is concrete — boxing that allocates per iteration.
func checkInterfaceConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := typeAndValue(pass, call.Fun)
	if !ok || !tv.IsType() {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	argT := pass.TypeOf(call.Args[0])
	if argT == nil || types.IsInterface(argT) || isUntypedNil(argT) {
		return
	}
	pass.Reportf(call.Pos(), "conversion to interface type %s inside a hot loop boxes the value per iteration", tv.Type.String())
}

// handedToNonRetainingCall reports whether lit is a direct argument to a
// call whose callee provably does not retain its function argument: any
// function in the sort package (Search, Slice, Find, … all call the
// predicate and discard it) or rand.Rand.Shuffle. For those the closure
// never escapes, so a capture costs nothing per iteration.
func handedToNonRetainingCall(pass *Pass, stack []ast.Node, lit *ast.FuncLit) bool {
	if pass.Info == nil || len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	isArg := false
	for _, a := range call.Args {
		if a == ast.Expr(lit) {
			isArg = true
			break
		}
	}
	if !isArg {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "math/rand" && o.Name() == "Rand" && fn.Name() == "Shuffle"
}

func typeAndValue(pass *Pass, e ast.Expr) (types.TypeAndValue, bool) {
	if pass.Info == nil {
		return types.TypeAndValue{}, false
	}
	tv, ok := pass.Info.Types[e]
	return tv, ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// capturedVar returns the name of one variable the literal captures from
// its enclosing function ("" when it captures nothing the heap cares
// about): an identifier resolving to a variable declared inside fd but
// outside the literal.
func capturedVar(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	if pass.Info == nil {
		return ""
	}
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id]
		if !ok {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}
