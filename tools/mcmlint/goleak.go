package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleakAnalyzer requires every `go` statement to be tied to a shutdown
// signal, the drain contract of DESIGN.md §10: a service that cannot stop
// its goroutines cannot drain. A spawn passes if the spawned body (a
// function literal, or a same-unit function declaration — one level, like
// the call summaries) observes any of:
//
//   - a context: ctx.Done() / ctx.Err() on a context.Context;
//   - a channel: a receive (<-ch, including select cases) or a
//     range-over-channel — done-channels and task queues both count;
//   - a WaitGroup: wg.Done() or wg.Wait() — the goroutine participates in
//     a join the owner waits on (jobsWG in the Service drain path).
//
// A goroutine running a function from another package is tied if the call
// passes a context, a channel, or a *sync.WaitGroup argument — the callee
// is assumed to honor it. Anything else needs
// //mcmlint:ignore goleak <reason>, making untracked lifecycles visible
// in review (e.g. a goroutine bounded by closing a net.Listener).
var goleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement must be tied to a shutdown signal (ctx, channel, or WaitGroup) or carry a reasoned ignore",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) {
	if pass.Info == nil {
		return
	}
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtTied(pass, decls, gs) {
				pass.Reportf(gs.Pos(), "goroutine is not tied to a shutdown signal: select on a ctx/done channel, join a WaitGroup, or annotate //mcmlint:ignore goleak <reason> (see DESIGN.md §10, the drain contract)")
			}
			return true
		})
	}
}

func goStmtTied(pass *Pass, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) bool {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyObservesSignal(pass, fun.Body)
	default:
		if obj := calleeObject(pass, gs.Call); obj != nil {
			if fd, ok := decls[obj]; ok {
				return bodyObservesSignal(pass, fd.Body)
			}
		}
	}
	// Cross-package (or unresolvable) callee: accept when the spawn hands
	// it a shutdown-capable argument.
	for _, arg := range gs.Call.Args {
		if isSignalType(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// bodyObservesSignal reports whether the body contains any shutdown
// observation. Nested function literals are included: a goroutine that
// delegates its select to a closure is still tied.
func bodyObservesSignal(pass *Pass, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvT := pass.TypeOf(sel.X)
			switch sel.Sel.Name {
			case "Done", "Err":
				if isContextType(recvT) || (sel.Sel.Name == "Done" && isWaitGroupType(recvT)) {
					tied = true
				}
			case "Wait":
				if isWaitGroupType(recvT) {
					tied = true
				}
			}
		}
		return true
	})
	return tied
}

func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isContextType(t) || isWaitGroupType(t)
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
