package main

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlowBeatsSyntacticCheck pins the point of the guarded rewrite with
// the v2.0 criterion re-implemented verbatim: "the accessing function
// calls Lock on the guard mutex somewhere in its body". unlockThenRead in
// testdata/guarded/flow.go satisfies that — it locks g.mu, reads, and
// unlocks before reading again — so the syntactic check provably passes
// it, while the dataflow analyzer reports the read after the Unlock.
func TestFlowBeatsSyntacticCheck(t *testing.T) {
	dir := filepath.Join("testdata", "guarded")
	u, err := loadUnit(dir, dir, []string{filepath.Join(dir, "flow.go")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.info == nil {
		t.Fatal("fixture did not type-check")
	}

	var fn *ast.FuncDecl
	for _, file := range u.files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "unlockThenRead" {
				fn = fd
			}
		}
	}
	if fn == nil {
		t.Fatal("unlockThenRead not found in testdata/guarded/flow.go")
	}

	// The pre-flow criterion, function-scope and path-blind.
	locksAnywhere := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				locksAnywhere = true
			}
		}
		return true
	})
	if !locksAnywhere {
		t.Fatal("fixture drifted: unlockThenRead must lock the guard somewhere so the syntactic criterion passes it")
	}

	// The final statement is the post-Unlock read the flow analysis must flag.
	lastStmt := fn.Body.List[len(fn.Body.List)-1]
	wantLine := u.fset.Position(lastStmt.Pos()).Line

	caught := false
	for _, f := range lintUnit(u, []*Analyzer{guardedAnalyzer}) {
		if f.pos.Line == wantLine && strings.Contains(f.msg, "gauge.val is guarded by mu") {
			caught = true
		}
	}
	if !caught {
		t.Errorf("flow-sensitive guarded missed the unlock-then-read at flow.go:%d that the syntactic check passes", wantLine)
	}
}
