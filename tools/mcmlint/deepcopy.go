package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// deepcopyAnalyzer enforces the PR 4 bit-identity contract at cache and
// retention boundaries: a cached value must stay immutable no matter what
// callers do with what they were handed, so every value of the protected
// type that crosses an annotated type's storage boundary must pass through
// the type's clone helper.
//
// A type opts in with a doc-comment directive naming its helper:
//
//	// planCache is …
//	//mcmlint:deepcopy cloneResult
//	type planCache struct { … }
//
// The protected type is the helper's result type (cloneResult(*Result)
// *Result ⇒ *Result). Inside methods of the annotated type, any expression
// of the protected type that is returned, assigned into a field or
// map/index slot, or placed in a composite literal must be one of:
//
//   - a call to the helper,
//   - nil,
//   - a fresh composite literal (&T{…} — owned, not shared),
//   - a call to another method of the annotated type (delegation: the
//     callee is itself checked).
//
// Everything else — returning a stored pointer, storing a caller's
// pointer — aliases mutable state across the boundary and is a diagnostic.
var deepcopyAnalyzer = &Analyzer{
	Name: "deepcopy",
	Doc:  "values crossing a //mcmlint:deepcopy type's storage boundary must pass through its clone helper",
	Run:  runDeepcopy,
}

func runDeepcopy(pass *Pass) {
	if pass.Pkg == nil || pass.Info == nil {
		return
	}
	boundaries := deepcopyBoundaries(pass)
	if len(boundaries) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvType := receiverTypeName(fd)
			b, ok := boundaries[recvType]
			if !ok || b.protected == nil {
				continue
			}
			checkDeepcopyMethod(pass, fd, b)
		}
	}
}

// deepcopyBoundary is one annotated type: its clone helper and the
// protected type the helper deep-copies.
type deepcopyBoundary struct {
	typeName  string
	helper    string
	protected types.Type
}

// deepcopyBoundaries collects //mcmlint:deepcopy annotations from type
// declarations and resolves each helper's result type.
func deepcopyBoundaries(pass *Pass) map[string]deepcopyBoundary {
	out := map[string]deepcopyBoundary{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				helper := deepcopyDirective(gd.Doc, ts.Doc, ts.Comment)
				if helper == "" {
					continue
				}
				b := deepcopyBoundary{typeName: ts.Name.Name, helper: helper}
				obj := pass.Pkg.Scope().Lookup(helper)
				fn, ok := obj.(*types.Func)
				if !ok {
					pass.Reportf(ts.Pos(), "//mcmlint:deepcopy names %q, which is not a function in this package", helper)
					continue
				}
				sig := fn.Type().(*types.Signature)
				if sig.Results().Len() == 0 {
					pass.Reportf(ts.Pos(), "//mcmlint:deepcopy helper %q returns nothing; it must return the deep-copied value", helper)
					continue
				}
				b.protected = sig.Results().At(0).Type()
				out[b.typeName] = b
			}
		}
	}
	return out
}

func deepcopyDirective(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), "mcmlint:deepcopy")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 1 {
				return fields[0]
			}
		}
	}
	return ""
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[U]) do not occur here; a plain ident is the
	// only supported shape.
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkDeepcopyMethod walks one method of an annotated type and reports
// protected-type values that cross the boundary unwrapped.
func checkDeepcopyMethod(pass *Pass, fd *ast.FuncDecl, b deepcopyBoundary) {
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recvName = names[0].Name
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				checkDeepcopyExpr(pass, e, b, recvName, "returned from "+fd.Name.Name)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					// Stored into a field or map/index slot: retained.
					checkDeepcopyExpr(pass, rhs, b, recvName, "stored by "+fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				checkDeepcopyExpr(pass, e, b, recvName, "retained in a composite literal by "+fd.Name.Name)
			}
		}
		return true
	})
}

func checkDeepcopyExpr(pass *Pass, e ast.Expr, b deepcopyBoundary, recvName, how string) {
	t := pass.TypeOf(e)
	if t == nil || !types.Identical(t, b.protected) {
		return
	}
	if deepcopyAllowed(e, b, recvName) {
		return
	}
	pass.Reportf(e.Pos(), "%s value %s without passing through %s: cached/retained values must be deep-copied so entries stay immutable (bit-identity contract)",
		b.protected.String(), how, b.helper)
}

func deepcopyAllowed(e ast.Expr, b deepcopyBoundary, recvName string) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return lit
	case *ast.ParenExpr:
		return deepcopyAllowed(e.X, b, recvName)
	case *ast.CallExpr:
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			return fn.Name == b.helper
		case *ast.SelectorExpr:
			// Delegation to a sibling method on the same receiver: the
			// callee's own body is checked, so its result is safe.
			if base, ok := fn.X.(*ast.Ident); ok && recvName != "" && base.Name == recvName {
				return true
			}
		}
	}
	return false
}
