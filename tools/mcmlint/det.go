package main

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// detAnalyzer is the determinism lint detlint pioneered, now analyzer #1
// of the suite. In packages annotated //mcmlint:deterministic it flags the
// three patterns that have historically broken byte-reproducibility of
// plans, sweeps, and fingerprints:
//
//  1. time.Now — wall-clock reads inside deterministic packages.
//     Timestamps must be threaded in by the caller (cmd/ layers stamp
//     results; the planning core never looks at a clock).
//  2. Global math/rand functions (rand.Intn, rand.Float64, rand.Shuffle,
//     …) — process-global RNG state is seeded outside the scenario seed
//     discipline. Constructor calls (rand.New, rand.NewSource,
//     rand.NewZipf) are fine; everything must flow from an explicit
//     *rand.Rand.
//  3. Ranging over a map while appending into an output slice, without a
//     sort of that slice later in the same block — map iteration order is
//     randomized per run, so the output ordering leaks nondeterminism.
//     The deterministic idiom (collect keys, sort, then index) is
//     accepted.
var detAnalyzer = &Analyzer{
	Name: "det",
	Doc:  "flags time.Now, global math/rand draws, and unsorted map-range output in //mcmlint:deterministic packages",
	Run:  runDet,
}

func runDet(pass *Pass) {
	if !pass.HasDirective("deterministic") {
		return
	}
	for _, file := range pass.Files {
		detFile(pass, file)
	}
}

func detFile(pass *Pass, file *ast.File) {
	timeName := importName(file, "time")
	randName := importName(file, "math/rand")
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Only calls count: rand.Rand / rand.Source in type positions
			// are exactly the seeded style the lint pushes toward.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if timeName != "" && id.Name == timeName && sel.Sel.Name == "Now" {
				pass.Reportf(n.Pos(), "time.Now in a deterministic package: thread timestamps in from the caller")
			}
			if randName != "" && id.Name == randName && globalRandFunc(sel.Sel.Name) {
				pass.Reportf(n.Pos(), "global math/rand state (%s.%s): derive a *rand.Rand from the scenario seed with rand.New(rand.NewSource(seed))", randName, sel.Sel.Name)
			}
		case *ast.BlockStmt:
			detMapRanges(pass, n)
		}
		return true
	})
}

// globalRandFunc reports whether name is a math/rand package-level function
// that consumes the process-global RNG. Constructors are exempt.
func globalRandFunc(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return false
	case "Rand", "Source", "Source64", "Zipf":
		// Type names: a rand.Source(x) conversion is not a global draw.
		return false
	}
	// Every other exported rand.X call site draws from the global source
	// (rand.Intn, rand.Perm, rand.Shuffle, rand.Seed, rand.Read, …).
	return true
}

// detMapRanges flags `for … := range m` statements over maps whose body
// appends into an output slice, unless a later statement in the same block
// sorts that slice (the collect-keys-then-sort idiom).
func detMapRanges(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rs.X) {
			continue
		}
		targets := appendTargets(rs.Body)
		if len(targets) == 0 {
			continue
		}
		if sortedLater(block.List[i+1:], targets) {
			continue
		}
		pass.Reportf(rs.Pos(),
			"appending to %s while ranging over a map: iteration order is randomized; collect and sort keys first, or sort the result before use",
			strings.Join(targets, ", "))
	}
}

func isMapType(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// appendTargets returns the names of variables assigned from append(...)
// calls anywhere in the loop body (v = append(v, …) and v := append(…)).
func appendTargets(body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					seen[id.Name] = true
				}
			}
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sortedLater reports whether any statement in stmts calls a sort/slices
// sorting function mentioning one of the target variables — which launders
// the nondeterministic collection order back into a canonical one.
func sortedLater(stmts []ast.Stmt, targets []string) bool {
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			if !strings.HasPrefix(sel.Sel.Name, "Sort") && !strings.HasPrefix(sel.Sel.Name, "Strings") &&
				!strings.HasPrefix(sel.Sel.Name, "Ints") && !strings.HasPrefix(sel.Sel.Name, "Float64s") &&
				!strings.HasPrefix(sel.Sel.Name, "Slice") && !strings.HasPrefix(sel.Sel.Name, "Stable") {
				return true
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && want[id.Name] {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// importName returns the local name under which path is imported in file
// ("" when absent, the last path element when unaliased).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
