package main

// Intraprocedural control-flow graph over one function body.
//
// Blocks hold a flat list of "simple" nodes: plain statements plus the
// guard expressions of the branching constructs (an *ast.IfStmt's Cond,
// a switch's Tag, a range's X). Nested block structure never appears
// inside a block — it is flattened into successor edges — so a dataflow
// client can fold over block.nodes without re-walking control flow.
//
// Return, panic-like calls, goto, break, continue, and fallthrough all
// terminate the current block; a synthetic exit block joins every
// function-leaving path, so "facts at exit" is one meet away.

import (
	"go/ast"
	"go/token"
)

// block is one basic block: straight-line nodes and successor edges.
type block struct {
	index int
	nodes []ast.Node
	succs []*block
}

// funcCFG is the CFG of one function (or function-literal) body.
type funcCFG struct {
	blocks []*block // creation order; blocks[0] is entry, last is exit
	entry  *block
	exit   *block
}

// loopFrame is one enclosing breakable construct during the build:
// loops carry a continue target, switch/select only a break target.
type loopFrame struct {
	label      string
	breakTo    *block
	continueTo *block // nil for switch/select
}

type pendingGoto struct {
	from  *block
	label string
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *block // nil while the current path is terminated
	frames []loopFrame
	labels map[string]*block
	gotos  []pendingGoto
	// fallthroughTo is the next case-clause body of the innermost switch,
	// the target of an ast.BranchStmt{Tok: FALLTHROUGH}.
	fallthroughTo *block
	// pendingLabel is the label of an immediately enclosing LabeledStmt,
	// consumed by the next loop/switch construct for labeled break/continue.
	pendingLabel string
}

// buildCFG flattens body into basic blocks. It never fails: unresolved
// jumps (broken source) just drop their edge, and analysis of the
// resulting graph stays conservative.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: map[string]*block{}}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	exit := &block{index: -1} // appended (and numbered) last
	b.g.exit = exit
	b.stmtList(body.List)
	b.link(b.cur, exit) // implicit return at the end of the body
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.link(pg.from, target)
		}
	}
	exit.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// add appends a node to the current block, starting an unreachable block
// if the path was terminated (keeps the analysis total over dead code).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.link(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := (*block)(nil)
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		if s.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd := b.cur
			join = b.newBlock()
			b.link(thenEnd, join)
			b.link(elseEnd, join)
		} else {
			join = b.newBlock()
			b.link(cond, join)
			b.link(thenEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		var post *block
		if s.Post != nil {
			post = b.newBlock()
		}
		exitB := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, exitB)
		}
		continueTo := head
		if post != nil {
			continueTo = post
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exitB, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, continueTo)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.link(post, head)
		}
		b.cur = exitB

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.link(b.cur, head)
		body := b.newBlock()
		exitB := b.newBlock()
		b.link(head, body)
		b.link(head, exitB)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exitB, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exitB

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body, cc.List == nil
		}, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			return nil, cc.Body, cc.List == nil
		}, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		cond := b.cur
		clauses := make([]*block, 0, len(s.Body.List))
		for range s.Body.List {
			blk := b.newBlock()
			b.link(cond, blk)
			clauses = append(clauses, blk)
		}
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
		for i, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			b.cur = clauses[i]
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if s.Label == nil || f.label == s.Label.Name {
					b.link(b.cur, f.breakTo)
					break
				}
			}
		case token.CONTINUE:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if f.continueTo == nil {
					continue
				}
				if s.Label == nil || f.label == s.Label.Name {
					b.link(b.cur, f.continueTo)
					break
				}
			}
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			b.link(b.cur, b.fallthroughTo)
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isNoReturnCall(call) {
			b.link(b.cur, b.g.exit)
			b.cur = nil
		}

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: the current
// block branches to each clause body (and, absent a default clause, to
// the join); fallthrough chains clause i to clause i+1.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt, split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool), allowFallthrough bool) {
	cond := b.cur
	type clause struct {
		blk       *block
		nodes     []ast.Node
		stmts     []ast.Stmt
		isDefault bool
	}
	clauses := make([]clause, 0, len(body.List))
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		nodes, stmts, isDefault := split(cc)
		blk := b.newBlock()
		b.link(cond, blk)
		if isDefault {
			hasDefault = true
		}
		clauses = append(clauses, clause{blk: blk, nodes: nodes, stmts: stmts, isDefault: isDefault})
	}
	join := b.newBlock()
	if !hasDefault {
		b.link(cond, join)
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
	savedFT := b.fallthroughTo
	for i, cl := range clauses {
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = clauses[i+1].blk
		}
		b.cur = cl.blk
		for _, n := range cl.nodes {
			b.add(n)
		}
		b.stmtList(cl.stmts)
		b.link(b.cur, join)
	}
	b.fallthroughTo = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// isNoReturnCall recognizes calls that never return: panic and the
// conventional fatal helpers (os.Exit, log.Fatal*, runtime.Goexit,
// testing's t.Fatal*). Receiver-based Fatal/Fatalf matches any receiver —
// over-approximating no-return only prunes paths, which is conservative
// for a must-analysis.
func isNoReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit":
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" {
				return true
			}
		case "Goexit":
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "runtime" {
				return true
			}
		case "Fatal", "Fatalf", "Fatalln", "FailNow":
			return true
		}
	}
	return false
}
