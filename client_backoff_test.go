package mcmpart

// In-package tests for the client's retry timing internals: the
// saturating exponential backoff (an int64 shift wrap used to collapse it
// at high attempt counts) and both RFC 9110 forms of Retry-After.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffShiftSaturates pins the overflow regression: with a base
// near the int64 ceiling, BaseBackoff << attempt wraps to a small
// positive duration at attempt 14 ((2^50+1)<<14 ≡ 2^14 mod 2^64), which
// slipped the old "d <= 0 || d > MaxBackoff" clamp and collapsed the
// backoff. The fixed computation must be monotone non-decreasing and
// pinned at MaxBackoff once it caps.
func TestBackoffShiftSaturates(t *testing.T) {
	c := NewClientWithOptions("http://unused", nil, ClientOptions{
		MaxRetries:  40,
		BaseBackoff: time.Duration(1<<50 + 1),
		MaxBackoff:  2 * time.Second,
	})
	prev := time.Duration(0)
	for attempt := 0; attempt < 40; attempt++ {
		d := c.backoffFor(attempt)
		if d <= 0 || d > c.opts.MaxBackoff {
			t.Fatalf("attempt %d: backoff %v escapes (0, %v]", attempt, d, c.opts.MaxBackoff)
		}
		if d < prev {
			t.Fatalf("attempt %d: backoff %v dropped below attempt %d's %v", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	if prev != c.opts.MaxBackoff {
		t.Fatalf("backoff never reached the %v cap (last %v)", c.opts.MaxBackoff, prev)
	}
}

// TestBackoffDoublesUntilCap checks the ordinary schedule is untouched by
// the saturation rewrite: base, 2*base, 4*base, ... then MaxBackoff.
func TestBackoffDoublesUntilCap(t *testing.T) {
	c := NewClientWithOptions("http://unused", nil, ClientOptions{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
	})
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
		2 * time.Second, 2 * time.Second,
	}
	for attempt, w := range want {
		if d := c.backoffFor(attempt); d != w {
			t.Fatalf("attempt %d: backoff %v, want %v", attempt, d, w)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return base }
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"seconds", "7", 7 * time.Second},
		{"seconds with spaces", " 3 ", 3 * time.Second},
		{"negative seconds", "-1", 0},
		{"garbage", "soon", 0},
		{"http date ahead", base.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date in the past", base.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http date rfc850", base.Add(30 * time.Second).Format(time.RFC850), 30 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.v, now); got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// TestRetryAfterHTTPDateFromServer runs the header through the real
// response path: a proxy-style 503 with an HTTP-date Retry-After must
// surface as APIError.RetryAfter instead of silently parsing as 0.
func TestRetryAfterHTTPDateFromServer(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", base.Add(45*time.Second).Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	c.now = func() time.Time { return base }
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("Health returned %v, want *APIError", err)
	}
	if apiErr.RetryAfter != 45*time.Second {
		t.Fatalf("RetryAfter = %v, want 45s", apiErr.RetryAfter)
	}
}

// TestOnRetryObserver counts retries through the hook: two 503s then
// success must surface exactly two observations with the causes attached.
func TestOnRetryObserver(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok": true}`))
	}))
	defer srv.Close()
	type retry struct {
		attempt int
		delay   time.Duration
	}
	var seen []retry
	c := NewClientWithOptions(srv.URL, nil, ClientOptions{
		MaxRetries:  5,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Millisecond,
		OnRetry: func(attempt int, delay time.Duration, cause error) {
			if cause == nil {
				t.Error("OnRetry called with nil cause")
			}
			seen = append(seen, retry{attempt, delay})
		},
	})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after retries: %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("observed %d retries, want 2", len(seen))
	}
	for i, r := range seen {
		if r.attempt != i {
			t.Fatalf("retry %d reported attempt %d", i, r.attempt)
		}
		if r.delay <= 0 {
			t.Fatalf("retry %d reported non-positive delay %v", i, r.delay)
		}
	}
}
