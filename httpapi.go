package mcmpart

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"

	"mcmpart/internal/telemetry"
)

// The HTTP JSON API served by cmd/mcmpartd (and by anything embedding
// NewHTTPHandler):
//
//	POST /v1/plan      {"graph": …, "options": …}  → PlanResponse (synchronous, cache-aware)
//	POST /v1/jobs      {"graph": …, "options": …}  → JobStatus (202; async)
//	GET  /v1/jobs/{id}                             → JobResponse (status + result when terminal)
//	DELETE /v1/jobs/{id}                           → JobStatus (cancels)
//	GET  /v1/policies                              → PoliciesResponse
//	GET  /v1/stats                                 → ServiceStats
//	GET  /metrics                                  → Prometheus text exposition (DESIGN.md §14)
//	GET  /healthz                                  → {"ok": true}
//
// Every request carries a request ID: the caller's X-Request-ID header
// when present, a generated one otherwise. The ID is echoed on the
// response header, stamped into the admitted job's status
// (JobStatus.RequestID), and attached to the structured request log line.
//
// Errors are {"error": "..."} with a meaningful status code: 400 for
// malformed requests, 404 for unknown jobs, 429 when admission sheds load
// (ErrBusy), 503 when the service is closed or draining. 429 and 503
// carry a Retry-After header — both are transient by contract (a
// draining daemon is typically being replaced), so clients with retry
// enabled honor it and try again.

// PlanOptionsWire is the JSON form of PlanOptions (Progress is not
// serializable and has a polling equivalent in JobStatus).
type PlanOptionsWire struct {
	Method           Method `json:"method,omitempty"`
	SampleBudget     int    `json:"sample_budget,omitempty"`
	Seed             int64  `json:"seed,omitempty"`
	UseSimulator     bool   `json:"use_simulator,omitempty"`
	SeedFromAnalytic bool   `json:"seed_from_analytic,omitempty"`
}

// Options converts the wire form to PlanOptions.
func (w PlanOptionsWire) Options() PlanOptions {
	return PlanOptions{
		Method:           w.Method,
		SampleBudget:     w.SampleBudget,
		Seed:             w.Seed,
		UseSimulator:     w.UseSimulator,
		SeedFromAnalytic: w.SeedFromAnalytic,
	}
}

// ResultWire is the JSON form of Result.
type ResultWire struct {
	Partition   Partition      `json:"partition"`
	Throughput  float64        `json:"throughput"`
	Improvement float64        `json:"improvement"`
	Samples     int            `json:"samples"`
	History     []float64      `json:"history,omitempty"`
	FailCounts  map[string]int `json:"fail_counts,omitempty"`
}

func resultToWire(r *Result) *ResultWire {
	if r == nil {
		return nil
	}
	return &ResultWire{
		Partition:   r.Partition,
		Throughput:  r.Throughput,
		Improvement: r.Improvement,
		Samples:     r.Samples,
		History:     r.History,
		FailCounts:  r.FailCounts,
	}
}

// Result converts the wire form back to a Result.
func (w *ResultWire) Result() *Result {
	if w == nil {
		return nil
	}
	return &Result{
		Partition:   w.Partition,
		Throughput:  w.Throughput,
		Improvement: w.Improvement,
		Samples:     w.Samples,
		History:     w.History,
		FailCounts:  w.FailCounts,
	}
}

// PlanRequestWire is the body of POST /v1/plan and POST /v1/jobs.
type PlanRequestWire struct {
	// Graph uses the graph's native JSON encoding
	// ({"name", "nodes", "edges"}, see Graph.MarshalJSON).
	Graph   *Graph          `json:"graph"`
	Options PlanOptionsWire `json:"options"`
}

// PlanResponse is the body of a successful POST /v1/plan.
type PlanResponse struct {
	Result *ResultWire `json:"result"`
	// Cached reports that the plan was served from the plan cache.
	Cached bool `json:"cached"`
	// Coalesced reports that the plan shared another request's in-flight
	// computation (single-flight) instead of planning itself.
	Coalesced bool `json:"coalesced,omitempty"`
	// GraphFingerprint is the canonical fingerprint the cache keyed on.
	GraphFingerprint string `json:"graph_fingerprint"`
	// Error carries ctx-style partial failures (timeout with best-so-far).
	Error string `json:"error,omitempty"`
}

// JobResponse is the body of GET /v1/jobs/{id}: the status snapshot plus
// the result once the job is terminal.
type JobResponse struct {
	JobStatus
	Result *ResultWire `json:"result,omitempty"`
}

// PoliciesResponse is the body of GET /v1/policies.
type PoliciesResponse struct {
	Package            string       `json:"package"`
	PackageFingerprint string       `json:"package_fingerprint"`
	PolicyInstalled    bool         `json:"policy_installed"`
	PolicyFingerprint  string       `json:"policy_fingerprint,omitempty"`
	Policies           []PolicyInfo `json:"policies"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HTTPOptions configure NewHTTPHandlerWithOptions.
type HTTPOptions struct {
	// Logger receives one structured line per request — method, route,
	// status, duration, request ID. nil discards the log stream (metrics
	// are recorded either way).
	Logger *slog.Logger
}

// Help strings for the per-route HTTP metrics; the registry keys help on
// the family, so every registration site must agree.
const (
	httpRequestsHelp = "HTTP requests served, by route pattern and status code."
	httpLatencyHelp  = "HTTP request latency in seconds, by route pattern."
)

// httpRoutes enumerates the served patterns so their latency histograms
// exist (at zero) from the first scrape instead of materializing on first
// hit. Request counters carry a status-code label and appear on first use.
var httpRoutes = []string{
	"POST /v1/plan",
	"POST /v1/jobs",
	"GET /v1/jobs/{id}",
	"DELETE /v1/jobs/{id}",
	"GET /v1/policies",
	"GET /v1/stats",
	"GET /metrics",
	"GET /healthz",
}

// NewHTTPHandler exposes a Service over the HTTP JSON API (see the package
// comment above for the routes). cmd/mcmpartd serves exactly this handler;
// embedding applications can mount it on their own mux.
func NewHTTPHandler(svc *Service) http.Handler {
	return NewHTTPHandlerWithOptions(svc, HTTPOptions{})
}

// statusWriter captures the response code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// NewHTTPHandlerWithOptions is NewHTTPHandler plus observability wiring:
// every request is measured into the service's telemetry registry
// (mcmpart_http_requests_total, mcmpart_http_request_seconds) and logged
// through opts.Logger with its request ID.
func NewHTTPHandlerWithOptions(svc *Service, httpOpts HTTPOptions) http.Handler {
	logger := httpOpts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	reg := svc.Metrics()
	for _, route := range httpRoutes {
		reg.Histogram("mcmpart_http_request_seconds", httpLatencyHelp, telemetry.DefBuckets,
			telemetry.Label{Name: "route", Value: route})
	}
	var ridSeq atomic.Uint64
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", telemetry.Handler(reg))
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodePlanRequest(w, r)
		if !ok {
			return
		}
		job, err := svc.Submit(r.Context(), PlanRequest{Graph: req.Graph, Options: req.Options.Options()})
		if err != nil {
			writeServiceError(w, err)
			return
		}
		var res *Result
		select {
		case <-job.Done():
			res, err = job.Result()
		case <-r.Context().Done():
			job.Cancel()
			<-job.Done()
			res, _ = job.Result()
			err = r.Context().Err()
		}
		if err != nil && res == nil {
			writeServiceError(w, err)
			return
		}
		status := job.Status()
		resp := PlanResponse{
			Result:           resultToWire(res),
			Cached:           status.Cached,
			Coalesced:        status.Coalesced,
			GraphFingerprint: req.Graph.Fingerprint(),
		}
		if err != nil {
			resp.Error = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodePlanRequest(w, r)
		if !ok {
			return
		}
		job, err := svc.Submit(r.Context(), PlanRequest{Graph: req.Graph, Options: req.Options.Options()})
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Status())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := svc.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
			return
		}
		resp := JobResponse{JobStatus: job.Status()}
		if res, _ := job.Result(); res != nil {
			resp.Result = resultToWire(res)
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := svc.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
			return
		}
		job.Cancel()
		writeJSON(w, http.StatusOK, job.Status())
	})

	mux.HandleFunc("GET /v1/policies", func(w http.ResponseWriter, r *http.Request) {
		pkg := svc.Package()
		writeJSON(w, http.StatusOK, PoliciesResponse{
			Package:            pkg.Name,
			PackageFingerprint: svc.Stats().PackageFingerprint,
			PolicyInstalled:    svc.Planner().HasPolicy(),
			PolicyFingerprint:  svc.Planner().PolicyFingerprint(),
			Policies:           svc.Policies(),
		})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A draining service reports unhealthy so load balancers stop
		// routing to it, while the still-open routes (job status, stats)
		// keep serving the requests it already owns.
		if svc.Stats().Draining {
			w.Header().Set("Retry-After", retryAfterValue)
			writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ok": false, "draining": true})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := svc.now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = "req-" + strconv.FormatUint(ridSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(WithRequestID(r.Context(), rid))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(sw, r)
		// ServeMux stamps the matched pattern onto the request it was
		// handed, so the route label is exact — no path cardinality.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		elapsed := svc.now().Sub(start)
		reg.Counter("mcmpart_http_requests_total", httpRequestsHelp,
			telemetry.Label{Name: "route", Value: route},
			telemetry.Label{Name: "code", Value: strconv.Itoa(sw.code)}).Inc()
		reg.Histogram("mcmpart_http_request_seconds", httpLatencyHelp, telemetry.DefBuckets,
			telemetry.Label{Name: "route", Value: route}).Observe(elapsed.Seconds())
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", sw.code),
			slog.Duration("duration", elapsed),
		)
	})
}

// decodePlanRequest parses and structurally validates the shared body of
// the plan and jobs endpoints. (Graph.UnmarshalJSON already validates the
// graph; option validation happens in Submit.)
func decodePlanRequest(w http.ResponseWriter, r *http.Request) (PlanRequestWire, bool) {
	var req PlanRequestWire
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "decoding request: " + err.Error()})
		return req, false
	}
	if req.Graph == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "request has no graph"})
		return req, false
	}
	return req, true
}

// retryAfterValue is the Retry-After advertised on 429 and 503: long
// enough for a queue to drain a job or a replacement daemon to bind the
// port, short enough that a retrying client converges quickly.
const retryAfterValue = "1"

// writeServiceError maps service errors to HTTP status codes. The mapping
// is bidirectional: Client maps these codes back to the same sentinels, so
// errors.Is works identically in-process and across the wire (pinned by the
// table-driven tests in client_errors_test.go). The two transient codes —
// 429 (queue full) and 503 (draining/closed) — carry a Retry-After header
// that Client surfaces as APIError.RetryAfter and the retry loop honors.
func writeServiceError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrBusy):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterValue)
	case errors.Is(err, ErrServiceClosed):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterValue)
	case errors.Is(err, ErrPolicyRequired):
		// A servable configuration issue, not a malformed request.
		code = http.StatusConflict
	case errors.Is(err, ErrInvalidRequest):
		// Explicit, though it matches the default: the sentinel is part of
		// the wire contract and must stay 400 even if the default moves.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
