// Command mcmgen generates synthetic workload graphs and MCM package
// descriptors as JSON files.
//
// Usage:
//
//	mcmgen -out dir [-seed 1] [-what corpus|bert|packages|random|all]
//	       [-random-count 20] [-random-nodes 0]
//
// It writes the 87-model pre-training corpus (train/validation/test
// subdirectories matching the 66/5/16 split) and/or the 2138-node BERT
// graph, in the JSON format cmd/mcmpart consumes, and/or every package
// preset (including the heterogeneous and non-ring ones) as package JSON
// under packages/ — editable starting points for custom -mcm descriptors.
//
// -what random emits -random-count scenario-fuzzing graphs from the
// deterministic randgraph stream (layered, branchy, diamond, skewed-MoE
// families) under random/. Graph i is exactly randgraph.Sample(seed, i) —
// the same stream the conformance sweep and the corpus augmentation draw,
// so a conformance violation's (seed, index) pair can be materialized to
// disk with this command. -random-nodes overrides the stream's own size
// draw with an exact node count (families still rotate; the weight budget
// scales with size, see internal/randgraph) — the knob behind the README's
// 100k-node analytic fast-path walkthrough. 0 keeps the stream's sizes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/randgraph"
	"mcmpart/internal/workload"
)

func main() {
	out := flag.String("out", "graphs", "output directory")
	seed := flag.Int64("seed", 1, "corpus seed")
	what := flag.String("what", "all", "what to generate: corpus, bert, packages, random, all")
	randomCount := flag.Int("random-count", 20, "how many random graphs -what random emits")
	randomNodes := flag.Int("random-nodes", 0, "exact node count for -what random graphs (0 = stream's own size draw; scales to 100k+)")
	flag.Parse()

	if *what == "corpus" || *what == "all" {
		ds := workload.Corpus(*seed)
		for sub, graphs := range map[string][]*graph.Graph{
			"train":      ds.Train,
			"validation": ds.Validation,
			"test":       ds.Test,
		} {
			dir := filepath.Join(*out, sub)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
			for _, g := range graphs {
				if err := writeGraph(filepath.Join(dir, g.Name()+".json"), g); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Printf("wrote %d corpus graphs (66/5/16 split) under %s\n", workload.CorpusSize, *out)
	}
	if *what == "bert" || *what == "all" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		g := workload.BERT()
		if err := writeGraph(filepath.Join(*out, "bert.json"), g); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote bert.json (%d nodes, %d MiB of weights)\n", g.NumNodes(), g.TotalParamBytes()>>20)
	}
	if *what == "random" || *what == "all" {
		dir := filepath.Join(*out, "random")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for i := 0; i < *randomCount; i++ {
			g := randgraph.Sample(*seed, i)
			if *randomNodes > 0 {
				fam := randgraph.Families()[i%len(randgraph.Families())]
				g = randgraph.Generate(randgraph.Config{Family: fam, Nodes: *randomNodes, Seed: *seed + int64(i)})
			}
			name := fmt.Sprintf("%03d-%s.json", i, g.Name())
			if err := writeGraph(filepath.Join(dir, name), g); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d random scenario graphs (seed %d) under %s\n", *randomCount, *seed, dir)
	}
	if *what == "packages" || *what == "all" {
		dir := filepath.Join(*out, "packages")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for name, ctor := range mcm.Presets {
			data, err := json.MarshalIndent(ctor(), "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d package descriptors under %s\n", len(mcm.Presets), dir)
	}
}

func writeGraph(path string, g *graph.Graph) error {
	data, err := json.Marshal(g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcmgen:", err)
	os.Exit(1)
}
