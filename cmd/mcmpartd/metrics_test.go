package main

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mcmpart"
)

// scrape fetches the daemon's /metrics exposition and parses it into
// series → value (series keys keep their label sets, e.g.
// `mcmpart_jobs_total{state="done"}`).
func scrape(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDaemonMetricsMatchStats is the telemetry acceptance test: boot the
// daemon with one worker and a one-slot queue, run the scripted workload —
// a cold plan, a warm repeat, a coalesced burst behind a slow plan, one
// shed request — and assert the /metrics exposition agrees with /v1/stats
// counter for counter, with every value equal to what the script implies.
func TestDaemonMetricsMatchStats(t *testing.T) {
	d := bootDaemonHandle(t, []string{"-addr", "127.0.0.1:0", "-mcm", "dev8", "-pool-workers", "1", "-queue", "1"})
	cl := d.Client
	ctx := context.Background()
	g := mcmpart.CorpusGraphs(1)[84]

	// Cold plan, then the warm repeat.
	fast := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 15, Seed: 3}
	cold, err := cl.Plan(ctx, g, fast)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first plan cannot be a cache hit")
	}
	warm, err := cl.Plan(ctx, g, fast)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second identical plan must be a cache hit")
	}

	// A slow plan to pin the single worker, then a coalesced burst of
	// identical requests riding its flight.
	slow := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 100000, Seed: 9}
	leader, err := cl.SubmitJob(ctx, g, slow)
	if err != nil {
		t.Fatal(err)
	}
	if leader.Cached || leader.Coalesced {
		t.Fatalf("leader job unexpectedly cached/coalesced: %+v", leader)
	}
	followers := make([]mcmpart.JobStatus, 3)
	for i := range followers {
		followers[i], err = cl.SubmitJob(ctx, g, slow)
		if err != nil {
			t.Fatal(err)
		}
		if !followers[i].Coalesced {
			t.Fatalf("follower %d not coalesced: %+v", i, followers[i])
		}
	}

	// A distinct request takes the single queue slot; the next distinct
	// request must shed with 429/ErrBusy.
	queued, err := cl.SubmitJob(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 15, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SubmitJob(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 15, Seed: 11}); !errors.Is(err, mcmpart.ErrBusy) {
		t.Fatalf("submission beyond queue capacity returned %v, want ErrBusy", err)
	}

	// Quiesce: every admitted job runs to done.
	for _, id := range []string{leader.ID, followers[0].ID, followers[1].ID, followers[2].ID, queued.ID} {
		jr, err := cl.WaitJob(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("waiting for %s: %v", id, err)
		}
		if jr.State != mcmpart.JobDone {
			t.Fatalf("job %s finished %s: %+v", id, jr.State, jr)
		}
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	metrics := scrape(t, cl.BaseURL())

	// The scripted workload fully determines the counters: 2 sync plans +
	// leader + 3 followers + 1 queued admitted (the shed one rejected, so
	// it counts on no tier). Only the warm repeat hit the memory cache;
	// the other 6 admissions missed it, and of those, cold, leader, and
	// queued executed a plan.
	want := []struct {
		series string
		value  float64
	}{
		{`mcmpart_jobs_submitted_total`, 7},
		{`mcmpart_jobs_total{state="done"}`, 7},
		{`mcmpart_jobs_total{state="failed"}`, 0},
		{`mcmpart_jobs_total{state="cancelled"}`, 0},
		{`mcmpart_jobs_shed_total`, 1},
		{`mcmpart_cache_hits_total{tier="memory"}`, 1},
		{`mcmpart_cache_misses_total{tier="memory"}`, 6},
		{`mcmpart_cache_hits_total{tier="disk"}`, 0},
		{`mcmpart_plans_executed_total`, 3},
		{`mcmpart_plans_coalesced_total`, 3},
		{`mcmpart_plan_seconds_count{path="cold"}`, 3},
		{`mcmpart_plan_seconds_count{path="warm"}`, 1},
		{`mcmpart_jobs_queued`, 0},
		{`mcmpart_jobs_running`, 0},
		{`mcmpart_queue_depth`, 0},
		{`mcmpart_queue_capacity`, 1},
		{`mcmpart_workers`, 1},
		{`mcmpart_workers_busy`, 0},
		{`mcmpart_draining`, 0},
		{`mcmpart_http_requests_total{code="200",route="POST /v1/plan"}`, 2},
		{`mcmpart_http_requests_total{code="429",route="POST /v1/jobs"}`, 1},
	}
	for _, w := range want {
		got, ok := metrics[w.series]
		if !ok {
			t.Errorf("series %s missing from /metrics", w.series)
			continue
		}
		if got != w.value {
			t.Errorf("%s = %v, want %v", w.series, got, w.value)
		}
	}

	// /v1/stats and /metrics are two views of one registry: counter for
	// counter they must agree exactly.
	same := []struct {
		series string
		stat   uint64
	}{
		{`mcmpart_jobs_submitted_total`, stats.JobsSubmitted},
		{`mcmpart_jobs_total{state="done"}`, stats.JobsDone},
		{`mcmpart_jobs_total{state="failed"}`, stats.JobsFailed},
		{`mcmpart_jobs_total{state="cancelled"}`, stats.JobsCancelled},
		{`mcmpart_jobs_shed_total`, stats.JobsShed},
		{`mcmpart_cache_hits_total{tier="memory"}`, stats.CacheHits},
		{`mcmpart_cache_misses_total{tier="memory"}`, stats.CacheMisses},
		{`mcmpart_cache_hits_total{tier="disk"}`, stats.DiskCacheHits},
		{`mcmpart_plans_executed_total`, stats.PlansExecuted},
		{`mcmpart_plans_coalesced_total`, stats.PlansCoalesced},
		{`mcmpart_queue_depth`, uint64(stats.QueueDepth)},
		{`mcmpart_queue_capacity`, uint64(stats.QueueCapacity)},
	}
	for _, s := range same {
		if got := metrics[s.series]; uint64(got) != s.stat {
			t.Errorf("%s = %v on /metrics but %d on /v1/stats", s.series, got, s.stat)
		}
	}

	// Histograms and cache gauges must be present with their full series
	// families (the documented scrape surface, DESIGN.md §14).
	for _, series := range []string{
		`mcmpart_plan_seconds_sum{path="cold"}`,
		`mcmpart_plan_seconds_bucket{path="cold",le="+Inf"}`,
		`mcmpart_http_request_seconds_count{route="POST /v1/plan"}`,
		`mcmpart_cache_entries`,
		`mcmpart_cache_capacity`,
	} {
		if _, ok := metrics[series]; !ok {
			t.Errorf("series %s missing from /metrics", series)
		}
	}
}
