package main

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"mcmpart"
	"mcmpart/internal/conformance"
)

// TestDaemonDrainAndRestartFromDiskCache is the PR's acceptance test for
// the fault-tolerant serving core, end to end through the real daemon:
//
//  1. boot mcmpartd with a persistent cache dir and plan a graph;
//  2. SIGTERM while a second plan is in flight — the in-flight plan runs
//     to completion under the drain, while a late request is refused with
//     503 + Retry-After;
//  3. a restarted daemon over the same cache dir serves both plans from
//     disk, the first bit-identical to the pre-restart response
//     (conformance.DiffResults clean), with the disk-tier hit counted.
func TestDaemonDrainAndRestartFromDiskCache(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "plans")
	args := []string{
		"-addr", "127.0.0.1:0", "-mcm", "dev8",
		"-pool-workers", "1",
		"-cache-dir", cacheDir,
		"-drain-timeout", "60s",
	}
	ctx := context.Background()
	corpus := mcmpart.CorpusGraphs(1)
	graphA, graphB := corpus[84], corpus[85]
	optsA := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 15, Seed: 3}

	d := bootDaemonHandle(t, args)

	// First plan: cold, written through to the disk tier. Its duration
	// calibrates the in-flight plan's budget below.
	coldStart := time.Now()
	first, err := d.Client.Plan(ctx, graphA, optsA)
	if err != nil {
		t.Fatal(err)
	}
	coldElapsed := time.Since(coldStart)
	if stats, err := d.Client.Stats(ctx); err != nil || stats.DiskCacheWrites < 1 {
		t.Fatalf("plan not persisted: stats=%+v err=%v", stats, err)
	}

	// Size the second plan to run for a few seconds: long enough that the
	// signal provably lands mid-plan, short enough to finish well inside
	// the drain timeout on any machine.
	perSample := coldElapsed / time.Duration(optsA.SampleBudget)
	if perSample <= 0 {
		perSample = 50 * time.Microsecond
	}
	budgetB := int(4 * time.Second / perSample)
	if budgetB < 500 {
		budgetB = 500
	}
	if budgetB > 2_000_000 {
		budgetB = 2_000_000
	}
	optsB := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: budgetB, Seed: 5}
	job, err := d.Client.SubmitJob(ctx, graphB, optsB)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := d.Client.JobStatus(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == mcmpart.JobRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("calibrated plan finished before the signal could land (budget %d, state %s)", budgetB, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM with the plan provably in flight.
	d.Signal()

	// The drain must refuse new work with 503 + Retry-After while the
	// in-flight plan keeps running. (The first probes may race ahead of
	// the drain goroutine and still be admitted as cache hits — retry
	// until the drain is observed.)
	var apiErr *mcmpart.APIError
	refuseDeadline := time.Now().Add(10 * time.Second)
	for {
		_, err := d.Client.Plan(ctx, graphA, optsA)
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(refuseDeadline) {
			t.Fatalf("draining daemon kept admitting plans (last err: %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("503 during drain carried no Retry-After: %+v", apiErr)
	}

	if code := d.Wait(t); code != 0 {
		t.Fatalf("daemon exited %d after drain", code)
	}

	// Restart over the same cache directory: both plans — the synchronous
	// first one and the one that completed under the drain — must be
	// served from disk without re-planning.
	d2 := bootDaemonHandle(t, args)
	restarted, err := d2.Client.Plan(ctx, graphA, optsA)
	if err != nil {
		t.Fatal(err)
	}
	if !restarted.Cached {
		t.Fatal("restarted daemon re-planned instead of serving the disk tier")
	}
	if diff := conformance.DiffResults(first.Result.Result(), restarted.Result.Result()); diff != "" {
		t.Fatalf("restart result not bit-identical: %s", diff)
	}
	fromDrain, err := d2.Client.Plan(ctx, graphB, optsB)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDrain.Cached {
		t.Fatal("the drained-to-completion plan was not persisted — the drain must have dropped it")
	}
	stats, err := d2.Client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiskCacheHits < 2 || stats.PlansExecuted != 0 {
		t.Fatalf("restart stats %+v: want >=2 disk hits and 0 plans executed", stats)
	}
}

// TestDaemonHealthzReportsDraining pins the load-balancer signal: healthz
// flips to 503 once the daemon begins draining.
func TestDaemonHealthzReportsDraining(t *testing.T) {
	d := bootDaemonHandle(t, []string{"-addr", "127.0.0.1:0", "-mcm", "dev4"})
	ctx := context.Background()
	if err := d.Client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	d.Signal()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := d.Client.Health(ctx)
		var apiErr *mcmpart.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported draining (last: %v)", err)
		}
		// An idle daemon drains fast; the listener may already be gone.
		if err != nil && apiErr == nil {
			break // transport error: the daemon has moved past draining to down
		}
		time.Sleep(2 * time.Millisecond)
	}
}
