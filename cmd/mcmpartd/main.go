// Command mcmpartd serves partition planning over HTTP: a long-lived
// mcmpart.Service — concurrency-safe planner, bounded plan cache,
// directory-backed policy registry, async job queue — behind the JSON API
// documented on mcmpart.NewHTTPHandler.
//
// Usage:
//
//	mcmpartd [-addr :7433] [-mcm dev8] [-policy-dir DIR] [-policy FILE]
//	         [-pool-workers N] [-queue N] [-cache N] [-cache-dir DIR]
//	         [-drain-timeout D] [-workers N] [-log-json]
//
// -mcm selects the package the daemon plans for: a preset name (dev4,
// dev8, dev8bi, edge36, het4, mesh16) or a path to a package JSON
// descriptor. One daemon serves one package; run one instance per package.
//
// -policy-dir opens (creating if missing) a policy registry directory. The
// newest artifact pre-trained for the daemon's package is installed at
// startup, and — because selection also happens lazily at plan time — an
// artifact dropped into the directory later is picked up by the first
// zeroshot/finetune request that needs it. -policy installs one explicit
// artifact instead (both may be given; -policy wins at startup).
//
// -pool-workers bounds how many plans run concurrently; -queue how many
// admitted jobs may wait (further submissions get HTTP 429). -cache bounds
// the plan cache in entries (0 keeps the default 256, negative disables).
// -cache-dir adds a crash-safe persistent plan-cache tier under the
// in-memory cache: completed plans are written through and survive daemon
// restarts bit-identically. -workers sets the process-wide compute worker
// default used inside each plan (kernels, rollout collection).
//
// On SIGINT/SIGTERM the daemon drains instead of dropping work: admission
// stops immediately (new plans get 503 + Retry-After, so a load balancer
// retries elsewhere), previously admitted jobs run to completion — or to
// their best-so-far result if -drain-timeout (default 10s) expires first —
// the disk cache tier is flushed, and only then does the HTTP server shut
// down. Status and stats routes keep serving throughout the drain.
//
// A quick session against a running daemon:
//
//	curl -s localhost:7433/healthz
//	curl -s -X POST localhost:7433/v1/plan -d @request.json
//	curl -s localhost:7433/v1/stats
//	curl -s localhost:7433/metrics
//
// Every request is logged through log/slog (text by default, JSON with
// -log-json) with its request ID — the caller's X-Request-ID header or a
// generated one — and measured into the Prometheus registry served at
// GET /metrics (metric contract: DESIGN.md §14).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mcmpart"
	"mcmpart/internal/parallel"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], nil))
}

// run is main, factored so tests can boot the daemon in-process: flags are
// parsed from args, the bound address is reported on ready (when non-nil)
// once the listener is up, and cancelling ctx shuts the daemon down
// gracefully.
func run(ctx context.Context, args []string, ready chan<- string) int {
	fs := flag.NewFlagSet("mcmpartd", flag.ContinueOnError)
	addr := fs.String("addr", ":7433", "listen address")
	mcmSpec := fs.String("mcm", "dev8", "package to plan for: preset name (dev4, dev8, dev8bi, edge36, het4, mesh16) or package JSON path")
	policyDir := fs.String("policy-dir", "", "policy registry directory (created if missing)")
	policyPath := fs.String("policy", "", "explicit policy artifact to install at startup")
	poolWorkers := fs.Int("pool-workers", 0, "concurrent plans (0 = process default)")
	queueDepth := fs.Int("queue", 0, "job queue depth (0 = 4x pool workers)")
	cacheEntries := fs.Int("cache", 0, "plan cache entries (0 = default 256, negative disables)")
	cacheDir := fs.String("cache-dir", "", "persistent plan cache directory (created if missing); plans survive restarts")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long a shutdown signal lets in-flight plans finish before cancelling them (best-so-far results are kept)")
	workers := fs.Int("workers", runtime.NumCPU(), "compute workers per plan (kernels, rollouts)")
	logJSON := fs.Bool("log-json", false, "emit request logs as JSON (default: logfmt-style text)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parallel.SetDefault(*workers)

	var handlerOpts slog.HandlerOptions
	var logHandler slog.Handler = slog.NewTextHandler(os.Stderr, &handlerOpts)
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, &handlerOpts)
	}
	logger := slog.New(logHandler)

	pkg, err := loadPackage(*mcmSpec)
	if err != nil {
		log.Print(err)
		return 1
	}
	svc, err := mcmpart.NewService(pkg, mcmpart.ServiceOptions{
		Workers:      *poolWorkers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		PolicyDir:    *policyDir,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	defer svc.Close()
	if *policyPath != "" {
		if err := svc.Planner().LoadPolicy(*policyPath); err != nil {
			log.Print(err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	server := &http.Server{Handler: mcmpart.NewHTTPHandlerWithOptions(svc, mcmpart.HTTPOptions{Logger: logger})}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Drain before shutting the listener down: the server keeps
		// answering during the drain — new plans with 503 + Retry-After,
		// status/stats normally — so in-flight synchronous plans can
		// deliver their responses and pollers can observe their jobs
		// finishing. Then Shutdown waits out any remaining active requests.
		log.Printf("mcmpartd: draining (timeout %s)", *drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		if err := svc.Drain(drainCtx); err != nil {
			log.Printf("mcmpartd: drain deadline hit, in-flight plans cancelled (best-so-far kept): %v", err)
		}
		cancelDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	log.Printf("mcmpartd: serving package %s (%d chips) on %s (policy installed: %v)",
		pkg.Name, pkg.Chips, ln.Addr(), svc.Planner().HasPolicy())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if err := server.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		return 1
	}
	return 0
}

// loadPackage resolves -mcm: preset names first, then package JSON files.
func loadPackage(spec string) (*mcmpart.Package, error) {
	pkg, presetErr := mcmpart.PackagePreset(spec)
	if presetErr == nil {
		return pkg, nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("-mcm %q is not a package JSON file (%w); %v", spec, err, presetErr)
	}
	return mcmpart.ParsePackageJSON(data)
}
