package main

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mcmpart"
)

// daemonHandle is an in-process daemon under test control: its client,
// plus explicit signal/wait hooks so tests can deliver the SIGTERM
// equivalent mid-flight and observe the drain.
type daemonHandle struct {
	Client *mcmpart.Client
	cancel context.CancelFunc
	done   chan int
}

// Signal delivers the SIGTERM equivalent (cancels run's context) without
// waiting — the daemon keeps serving while it drains.
func (d *daemonHandle) Signal() { d.cancel() }

// Wait blocks until the daemon exits and returns its exit code.
func (d *daemonHandle) Wait(t *testing.T) int {
	t.Helper()
	select {
	case code := <-d.done:
		d.done <- code // keep rereadable for the cleanup path
		return code
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not shut down")
		return -1
	}
}

// bootDaemonHandle starts the daemon in-process via run(). Shutdown
// happens through context cancellation, exactly like SIGTERM in
// production.
func bootDaemonHandle(t *testing.T, args []string) *daemonHandle {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited with code %d before becoming ready", code)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	d := &daemonHandle{Client: mcmpart.NewClient("http://"+addr, nil), cancel: cancel, done: done}
	t.Cleanup(func() {
		d.Signal()
		if code := d.Wait(t); code != 0 {
			t.Errorf("daemon exited with code %d", code)
		}
	})
	return d
}

// bootDaemon is the simple form for tests that only shut down at cleanup.
func bootDaemon(t *testing.T, args []string) *mcmpart.Client {
	t.Helper()
	return bootDaemonHandle(t, args).Client
}

// TestDaemonEndToEndCachedZeroShot is the PR's acceptance test: boot
// mcmpartd in-process with a policy registry holding a pre-trained dev8
// policy, plan a held-out corpus MLP over HTTP twice with the zero-shot
// method, and assert the second response is a cache hit, bit-identical to
// the first, with /v1/stats reporting exactly 1 hit / 1 miss.
func TestDaemonEndToEndCachedZeroShot(t *testing.T) {
	// Pre-train a dev8 policy and drop it into the registry directory the
	// daemon will serve from — the "pretrain once, serve forever" flow.
	dir := t.TempDir()
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	corpus := mcmpart.CorpusGraphs(1)
	if _, err := pl.Pretrain(context.Background(), corpus[:6], mcmpart.PretrainOptions{
		TotalSamples: 120, Checkpoints: 3, ValidationGraphs: 1, ValidationSamples: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := pl.SavePolicy(filepath.Join(dir, "dev8.policy.json")); err != nil {
		t.Fatal(err)
	}

	cl := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-mcm", "dev8", "-policy-dir", dir})
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	pols, err := cl.Policies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pols.PolicyInstalled || len(pols.Policies) == 0 {
		t.Fatalf("registry policy not installed at startup: %+v", pols)
	}

	held := corpus[84] // a held-out MLP the policy never trained on
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot, SampleBudget: 10, Seed: 7}
	first, err := cl.Plan(ctx, held, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first plan cannot be a cache hit")
	}
	if first.Result == nil || len(first.Result.Partition) != held.NumNodes() {
		t.Fatalf("first plan returned no usable result: %+v", first)
	}
	second, err := cl.Plan(ctx, held, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical plan must be a cache hit")
	}
	if !reflect.DeepEqual(first.Result.Partition, second.Result.Partition) {
		t.Fatalf("cached partition differs: %v vs %v", first.Result.Partition, second.Result.Partition)
	}
	if math.Float64bits(first.Result.Throughput) != math.Float64bits(second.Result.Throughput) {
		t.Fatalf("cached throughput not bit-identical: %v vs %v", first.Result.Throughput, second.Result.Throughput)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("stats report %d hits / %d misses, want 1 / 1", stats.CacheHits, stats.CacheMisses)
	}
}

// TestDaemonSmoke boots a bare daemon (no policy) and drives the cheap
// from-scratch path: plan a dev8 MLP twice, second call cached.
func TestDaemonSmoke(t *testing.T) {
	cl := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-mcm", "dev8"})
	ctx := context.Background()
	g := mcmpart.CorpusGraphs(1)[84]
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 15, Seed: 3}
	first, err := cl.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cache flags wrong: first=%v second=%v", first.Cached, second.Cached)
	}
	if !reflect.DeepEqual(first.Result.Partition, second.Result.Partition) {
		t.Fatal("cached plan differs from cold plan")
	}
}
