// Command mcmbench measures the worker-pool speedups of the repository's
// hot paths and writes them to a JSON file, so the performance trajectory
// is tracked PR over PR (BENCH_PR1.json is the first point; CI uploads the
// current BENCH_PR<n>.json as an artifact).
//
// Usage:
//
//	mcmbench [-out BENCH_PR7.json] [-workers N] [-iters N] [-pr N]
//
// Besides the worker-pool speedups, the report carries a transfer
// benchmark — the samples each deployment mode (RL from scratch, zero-shot,
// fine-tuning) needs to reach a fixed improvement on a held-out dev8
// graph after one shared pre-training run, the paper's sample-efficiency
// claim (Sec. 5.2/5.3) tracked PR over PR — and a service benchmark: the
// latency of a cold plan vs its cached repeat through mcmpart.Service
// (asserting bit-identical results) and the concurrent throughput of the
// async job API. A resilience block measures the fault-tolerant serving
// core: an N-way identical cold burst with single-flight coalescing vs
// without (same wall-clock question a thundering herd asks), and the
// latency of a warm restart served from the persistent disk cache tier.
// A scale block times the analytic fast-path partitioner (internal/analyze)
// on 1k/10k/100k-node generated graphs against evaluator-driven search,
// recording each plan's gap above its sound cost lower bound and the
// samples search needs to match analytic quality with and without
// SeedFromAnalytic.
//
// Each benchmark runs the same seeded computation twice — once at
// workers=1 and once at workers=N — reporting wall-clock for both, the
// speedup, and whether the two runs produced identical outputs (they must:
// the parallel engine's determinism contract says worker count changes
// wall-clock only; see DESIGN.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mcmpart"
	"mcmpart/internal/analyze"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/experiments"
	"mcmpart/internal/mat"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/randgraph"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// Bench is one measured hot path.
type Bench struct {
	Name string `json:"name"`
	// SerialMs and ParallelMs are wall-clock per run at workers=1 and
	// workers=N respectively.
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// OutputsIdentical reports whether both runs produced bit-identical
	// results — the determinism contract, checked, not assumed.
	OutputsIdentical bool `json:"outputs_identical"`
}

// TransferBench reports the sample cost of reaching a fixed improvement
// threshold on a held-out graph per deployment mode (0 = not reached
// within the budget).
type TransferBench struct {
	Package         string  `json:"package"`
	Graph           string  `json:"graph"`
	Threshold       float64 `json:"threshold"`
	Budget          int     `json:"budget"`
	PretrainSamples int     `json:"pretrain_samples"`
	SamplesScratch  int     `json:"samples_scratch"`
	SamplesZeroShot int     `json:"samples_zeroshot"`
	SamplesFineTune int     `json:"samples_finetune"`
}

// ServiceBench reports the service layer's cold-vs-cached plan latency and
// its concurrent throughput through the async job API.
type ServiceBench struct {
	Package string `json:"package"`
	Graph   string `json:"graph"`
	// ColdMs is the latency of the first (cache-miss) plan; CachedMs the
	// latency of the identical repeat served from the plan cache.
	ColdMs   float64 `json:"cold_ms"`
	CachedMs float64 `json:"cached_ms"`
	Speedup  float64 `json:"speedup"`
	// CachedIdentical reports that the cached result was bit-identical to
	// the cold plan — the cache contract, checked.
	CachedIdentical bool `json:"cached_identical"`
	// Concurrent throughput: Requests distinct plans pushed through
	// Submit on PoolWorkers workers.
	Requests      int     `json:"requests"`
	PoolWorkers   int     `json:"pool_workers"`
	ConcurrentMs  float64 `json:"concurrent_ms"`
	PlansPerSec   float64 `json:"plans_per_sec"`
	CacheHitsSeen uint64  `json:"cache_hits_seen"`
}

// ResilienceBench reports the serving core's fault-tolerance economics:
// what single-flight coalescing saves on an identical-request burst, and
// what the persistent cache tier saves on a daemon restart.
type ResilienceBench struct {
	Package string `json:"package"`
	Graph   string `json:"graph"`
	// Burst: Requests identical cold plans submitted concurrently, with
	// coalescing (one planner invocation, PlansExecuted pinned in the
	// report) and without (every request plans).
	Requests               int     `json:"requests"`
	CoalescedMs            float64 `json:"coalesced_ms"`
	CoalescedPlansExecuted uint64  `json:"coalesced_plans_executed"`
	UncoalescedMs          float64 `json:"uncoalesced_ms"`
	CoalescingSpeedup      float64 `json:"coalescing_speedup"`
	BurstIdentical         bool    `json:"burst_identical"`
	// Warm restart: the same plan cold, then through a fresh service over
	// the same persistent cache directory.
	RestartColdMs    float64 `json:"restart_cold_ms"`
	RestartDiskHitMs float64 `json:"restart_disk_hit_ms"`
	RestartSpeedup   float64 `json:"restart_speedup"`
	RestartIdentical bool    `json:"restart_identical"`
	RestartDiskHits  uint64  `json:"restart_disk_hits"`
}

// Report is the emitted JSON document.
type Report struct {
	PR         int              `json:"pr"`
	CPUs       int              `json:"cpus"`
	Workers    int              `json:"workers"`
	Benches    []Bench          `json:"benchmarks"`
	Transfer   *TransferBench   `json:"transfer,omitempty"`
	Service    *ServiceBench    `json:"service,omitempty"`
	Resilience *ResilienceBench `json:"resilience,omitempty"`
	// Scale is the analytic fast path's scaling block: plan time and bound
	// gap at 1k/10k/100k nodes, vs evaluator-driven search on the same
	// graphs.
	Scale []ScaleCase `json:"scale,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR7.json", "output JSON path")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel worker count to benchmark against workers=1")
	iters := flag.Int("iters", 3, "timed repetitions per configuration (best is kept)")
	pr := flag.Int("pr", 7, "PR number recorded in the report")
	flag.Parse()

	rep := Report{PR: *pr, CPUs: runtime.NumCPU(), Workers: *workers}
	rep.Benches = append(rep.Benches,
		benchMatMul(*workers, *iters),
		benchRollouts(*workers, *iters),
		benchFig7(*workers, *iters),
		benchTable1(*workers, *iters),
	)
	rep.Transfer = benchTransfer()
	rep.Service = benchService(*workers)
	rep.Resilience = benchResilience(*workers)
	rep.Scale = benchScale()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	for _, b := range rep.Benches {
		fmt.Printf("%-18s serial %8.1f ms   workers=%d %8.1f ms   speedup %.2fx   identical=%v\n",
			b.Name, b.SerialMs, *workers, b.ParallelMs, b.Speedup, b.OutputsIdentical)
	}
	t := rep.Transfer
	fmt.Printf("transfer %s/%s: samples to %.2fx — scratch %d, zero-shot %d, fine-tune %d (0 = not reached in %d)\n",
		t.Package, t.Graph, t.Threshold, t.SamplesScratch, t.SamplesZeroShot, t.SamplesFineTune, t.Budget)
	sv := rep.Service
	fmt.Printf("service %s/%s: cold %.1f ms, cached %.3f ms (%.0fx, identical=%v); %d concurrent plans on %d workers: %.1f ms (%.1f plans/s, %d cache hits)\n",
		sv.Package, sv.Graph, sv.ColdMs, sv.CachedMs, sv.Speedup, sv.CachedIdentical,
		sv.Requests, sv.PoolWorkers, sv.ConcurrentMs, sv.PlansPerSec, sv.CacheHitsSeen)
	rs := rep.Resilience
	fmt.Printf("resilience %s/%s: %d-way cold burst coalesced %.1f ms (%d plans executed) vs uncoalesced %.1f ms (%.1fx, identical=%v); warm restart %.3f ms vs cold %.1f ms (%.0fx, identical=%v)\n",
		rs.Package, rs.Graph, rs.Requests, rs.CoalescedMs, rs.CoalescedPlansExecuted,
		rs.UncoalescedMs, rs.CoalescingSpeedup, rs.BurstIdentical,
		rs.RestartDiskHitMs, rs.RestartColdMs, rs.RestartSpeedup, rs.RestartIdentical)
	for _, sc := range rep.Scale {
		fmt.Printf("scale %s/%dk nodes: generate %.0f ms, analytic plan %.1f ms (%d chips, %.1f%% above lower bound); random search budget %d: %.1f ms, samples to analytic quality seeded %d vs unseeded %d (0 = never)\n",
			sc.Package, sc.Nodes/1000, sc.GenerateMs, sc.AnalyticMs, sc.ChipsUsed, sc.BoundGapPct,
			sc.SearchBudget, sc.SearchMs, sc.SeededSamples, sc.UnseededSamples)
	}
	fmt.Println("wrote", *out)
}

// measure times fn at the given default worker count, keeping the best of
// iters runs, and returns the duration plus fn's output fingerprint.
func measure(workers, iters int, fn func() float64) (ms float64, fingerprint float64) {
	old := parallel.Default()
	parallel.SetDefault(workers)
	defer parallel.SetDefault(old)
	best := time.Duration(1<<62 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		fingerprint = fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6, fingerprint
}

func bench(name string, workers, iters int, fn func() float64) Bench {
	sMs, sFp := measure(1, iters, fn)
	pMs, pFp := measure(workers, iters, fn)
	b := Bench{Name: name, SerialMs: sMs, ParallelMs: pMs, OutputsIdentical: sFp == pFp}
	if pMs > 0 {
		b.Speedup = sMs / pMs
	}
	return b
}

// benchMatMul times the blocked row-parallel kernel on a policy-scale
// product (320^3 multiply-adds per call, well above the fan-out threshold).
func benchMatMul(workers, iters int) Bench {
	const n = 320
	rng := rand.New(rand.NewSource(1))
	a, b, out := mat.New(n, n), mat.New(n, n), mat.New(n, n)
	a.XavierInit(rng)
	b.XavierInit(rng)
	return bench("mat.Mul 320^3", workers, iters, func() float64 {
		var sum float64
		for k := 0; k < 30; k++ {
			mat.Mul(out, a, b)
			sum += out.At(n/2, n/2)
		}
		return sum
	})
}

// benchRollouts times PPO rollout collection (the training hot path) on a
// mid-size MLP over the analytical cost model.
func benchRollouts(workers, iters int) Bench {
	return bench("ppo.rollouts", workers, iters, func() float64 {
		pkg := mcm.Dev8()
		g := workload.MLP(workload.MLPConfig{Name: "bench", Layers: 10, Input: 512, Hidden: 2048, Output: 256, Batch: 32})
		pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
		if err != nil {
			fatal(err)
		}
		model := costmodel.New(pkg)
		baseTh, _ := model.Evaluate(g, search.GreedyPackage(g, pkg))
		env := rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh)
		env.PartFactory = func() (cpsolver.Partitioner, error) {
			return cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
		}
		rng := rand.New(rand.NewSource(5))
		policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
		trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
		if _, err := trainer.TrainUntil(context.Background(), []*rl.Env{env}, 96); err != nil {
			fatal(err)
		}
		return env.BestImprovement() + float64(env.Samples)
	})
}

// benchFig7 times the calibration study's corpus sampling (solver replicas
// fanning over random BERT partitions).
func benchFig7(workers, iters int) Bench {
	return bench("fig7.sampling", workers, iters, func() float64 {
		res, err := experiments.Figure7(experiments.Fig7Config{
			Scale: experiments.ScaleQuick, Seed: 1, Samples: 200,
		})
		if err != nil {
			fatal(err)
		}
		return res.PearsonR + res.InvalidPct
	})
}

// benchTable1 times the Table 1 evidence measurement (raw validity and
// solver sampling rates).
func benchTable1(workers, iters int) Bench {
	return bench("table1.evidence", workers, iters, func() float64 {
		res, err := experiments.Table1(1, 200)
		if err != nil {
			fatal(err)
		}
		return res.RawValidPct + res.SolverValidPct
	})
}

// benchTransfer measures the paper's sample-efficiency claim through the
// public Planner API: one shared pre-training run on dev8 corpus graphs,
// then the samples each deployment mode needs to first reach the
// threshold improvement on a held-out graph.
func benchTransfer() *TransferBench {
	ctx := context.Background()
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		fatal(err)
	}
	corpus := mcmpart.CorpusGraphs(1)
	const pretrainSamples = 400
	if _, err := pl.Pretrain(ctx, corpus[:10], mcmpart.PretrainOptions{
		TotalSamples:     pretrainSamples,
		Checkpoints:      5,
		ValidationGraphs: 2,
	}); err != nil {
		fatal(err)
	}
	held := corpus[len(corpus)-1]
	t := &TransferBench{
		Package:         "dev8",
		Graph:           held.Name(),
		Threshold:       1.05,
		Budget:          80,
		PretrainSamples: pretrainSamples,
	}
	run := func(m mcmpart.Method) int {
		res, err := pl.Plan(ctx, held, mcmpart.PlanOptions{Method: m, SampleBudget: t.Budget, Seed: 7})
		if err != nil {
			fatal(err)
		}
		n, ok := res.SamplesToImprovement(t.Threshold)
		if !ok {
			return 0
		}
		return n
	}
	t.SamplesScratch = run(mcmpart.MethodRL)
	t.SamplesZeroShot = run(mcmpart.MethodZeroShot)
	t.SamplesFineTune = run(mcmpart.MethodFineTune)
	return t
}

// benchService measures the serving layer on dev8: the latency of one cold
// (cache-miss) plan vs its identical cached repeat — asserting the repeat
// is bit-identical — then the wall-clock of a burst of distinct plans
// submitted concurrently through the async job API.
func benchService(workers int) *ServiceBench {
	ctx := context.Background()
	svc, err := mcmpart.NewService(mcmpart.Dev8(), mcmpart.ServiceOptions{Workers: workers, QueueDepth: 4096})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	corpus := mcmpart.CorpusGraphs(1)
	g := corpus[84]
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 40, Seed: 9}

	start := time.Now()
	cold, err := svc.Plan(ctx, g, opts)
	if err != nil {
		fatal(err)
	}
	coldMs := float64(time.Since(start).Nanoseconds()) / 1e6
	start = time.Now()
	cached, err := svc.Plan(ctx, g, opts)
	if err != nil {
		fatal(err)
	}
	cachedMs := float64(time.Since(start).Nanoseconds()) / 1e6

	identical := cold.Samples == cached.Samples &&
		cold.Throughput == cached.Throughput &&
		len(cold.Partition) == len(cached.Partition)
	if identical {
		for i := range cold.Partition {
			if cold.Partition[i] != cached.Partition[i] {
				identical = false
				break
			}
		}
	}

	sb := &ServiceBench{
		Package: "dev8", Graph: g.Name(),
		ColdMs: coldMs, CachedMs: cachedMs, CachedIdentical: identical,
		PoolWorkers: svc.Stats().Workers,
	}
	if cachedMs > 0 {
		sb.Speedup = coldMs / cachedMs
	}

	// Concurrent throughput: distinct (graph, seed) pairs so every plan is
	// a genuine computation, submitted all at once.
	const requests = 24
	hitsBefore := svc.Stats().CacheHits
	jobs := make([]*mcmpart.Job, 0, requests)
	start = time.Now()
	for i := 0; i < requests; i++ {
		job, err := svc.Submit(ctx, mcmpart.PlanRequest{
			Graph: corpus[80+i%5],
			Options: mcmpart.PlanOptions{
				Method: mcmpart.MethodRandom, SampleBudget: 40, Seed: int64(1 + i/5),
			},
		})
		if err != nil {
			fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(ctx); err != nil {
			fatal(err)
		}
	}
	elapsed := float64(time.Since(start).Nanoseconds()) / 1e6
	sb.Requests = requests
	sb.ConcurrentMs = elapsed
	if elapsed > 0 {
		sb.PlansPerSec = float64(requests) / (elapsed / 1e3)
	}
	sb.CacheHitsSeen = svc.Stats().CacheHits - hitsBefore
	return sb
}

// benchResilience measures the fault-tolerant serving core added with the
// single-flight/persistent-cache work: the wall-clock of an N-way
// identical cold burst with coalescing (one planner invocation shared by
// all callers) vs without (a thundering herd, every caller planning), and
// the latency of serving a plan after a "restart" — a fresh service over
// the same persistent cache directory.
func benchResilience(workers int) *ResilienceBench {
	ctx := context.Background()
	corpus := mcmpart.CorpusGraphs(1)
	g := corpus[84]
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 40, Seed: 9}
	const requests = 16

	rb := &ResilienceBench{Package: "dev8", Graph: g.Name(), Requests: requests}

	burst := func(svcOpts mcmpart.ServiceOptions) (float64, uint64, []*mcmpart.Result) {
		svc, err := mcmpart.NewService(mcmpart.Dev8(), svcOpts)
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
		jobs := make([]*mcmpart.Job, 0, requests)
		start := time.Now()
		for i := 0; i < requests; i++ {
			job, err := svc.Submit(ctx, mcmpart.PlanRequest{Graph: g, Options: opts})
			if err != nil {
				fatal(err)
			}
			jobs = append(jobs, job)
		}
		results := make([]*mcmpart.Result, 0, requests)
		for _, job := range jobs {
			res, err := job.Wait(ctx)
			if err != nil {
				fatal(err)
			}
			results = append(results, res)
		}
		return float64(time.Since(start).Nanoseconds()) / 1e6, svc.Stats().PlansExecuted, results
	}

	coalescedMs, executed, coalescedResults := burst(mcmpart.ServiceOptions{Workers: workers, QueueDepth: 4096})
	// The uncoalesced herd needs the memory cache off too, or all but the
	// first request would ride the cache instead of planning.
	uncoalescedMs, _, uncoalescedResults := burst(mcmpart.ServiceOptions{
		Workers: workers, QueueDepth: 4096, DisableCoalescing: true, CacheEntries: -1,
	})
	rb.CoalescedMs = coalescedMs
	rb.CoalescedPlansExecuted = executed
	rb.UncoalescedMs = uncoalescedMs
	if coalescedMs > 0 {
		rb.CoalescingSpeedup = uncoalescedMs / coalescedMs
	}
	rb.BurstIdentical = true
	for _, res := range append(coalescedResults, uncoalescedResults...) {
		if res.Samples != coalescedResults[0].Samples || res.Throughput != coalescedResults[0].Throughput {
			rb.BurstIdentical = false
		}
	}

	// Warm restart through the persistent tier.
	dir, err := os.MkdirTemp("", "mcmbench-plancache-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	first, err := mcmpart.NewService(mcmpart.Dev8(), mcmpart.ServiceOptions{Workers: workers, CacheDir: dir})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	cold, err := first.Plan(ctx, g, opts)
	if err != nil {
		fatal(err)
	}
	rb.RestartColdMs = float64(time.Since(start).Nanoseconds()) / 1e6
	first.Close()

	second, err := mcmpart.NewService(mcmpart.Dev8(), mcmpart.ServiceOptions{Workers: workers, CacheDir: dir})
	if err != nil {
		fatal(err)
	}
	defer second.Close()
	start = time.Now()
	warm, err := second.Plan(ctx, g, opts)
	if err != nil {
		fatal(err)
	}
	rb.RestartDiskHitMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if rb.RestartDiskHitMs > 0 {
		rb.RestartSpeedup = rb.RestartColdMs / rb.RestartDiskHitMs
	}
	rb.RestartIdentical = cold.Samples == warm.Samples && cold.Throughput == warm.Throughput
	rb.RestartDiskHits = second.Stats().DiskCacheHits
	return rb
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcmbench:", err)
	os.Exit(1)
}

// ScaleCase is one row of the scale block: one generated graph size, the
// analytic fast path's wall-clock and bound gap, and the sample cost for
// the search methods to match the analytic plan's quality with and without
// analytic seeding.
type ScaleCase struct {
	Nodes   int    `json:"nodes"`
	Package string `json:"package"`
	Graph   string `json:"graph"`
	// GenerateMs is graph generation; AnalyticMs is analyze.New + Plan —
	// the full fast path, no evaluator in the loop.
	GenerateMs float64 `json:"generate_ms"`
	AnalyticMs float64 `json:"analytic_ms"`
	// ChipsUsed is the analytic plan's chip count; BoundGapPct is how far
	// its latency sits above its own sound lower bound (0% = provably
	// optimal for this graph/package).
	ChipsUsed   int     `json:"chips_used"`
	BoundGapPct float64 `json:"bound_gap_pct"`
	// AnalyticImprovement is the analytic plan's throughput normalized to
	// the greedy baseline, through the public Planner.
	AnalyticImprovement float64 `json:"analytic_improvement"`
	// SearchMs is MethodRandom wall-clock at SearchBudget samples on the
	// same graph — the path that needs an evaluator call per sample.
	SearchMs     float64 `json:"search_ms"`
	SearchBudget int     `json:"search_budget"`
	// SeededSamples / UnseededSamples are the samples MethodRandom needed
	// to first reach the analytic plan's improvement with and without
	// SeedFromAnalytic (0 = not reached within the budget).
	SeededSamples   int `json:"seeded_samples_to_analytic"`
	UnseededSamples int `json:"unseeded_samples_to_analytic"`
}

// benchScale measures the analytic fast path across three graph scales.
// Package choice keeps every scale genuinely multi-chip: the generated
// weight budget (24 MiB per 1k nodes) overflows a single die of the chosen
// package at every size.
func benchScale() []ScaleCase {
	cases := []struct {
		nodes int
		pkg   *mcm.Package
	}{
		{1_000, mcm.Dev8()},
		{10_000, mcm.Edge36()},
		{100_000, mcm.Edge36()},
	}
	const budget = 16
	out := make([]ScaleCase, 0, len(cases))
	for _, c := range cases {
		t0 := time.Now()
		g := randgraph.Generate(randgraph.Config{Family: randgraph.FamilyLayered, Nodes: c.nodes, Seed: 42})
		genMs := float64(time.Since(t0)) / 1e6

		t0 = time.Now()
		an, err := analyze.New(g, c.pkg)
		if err != nil {
			fatal(err)
		}
		_, info, err := an.Plan(analyze.Options{})
		if err != nil {
			fatal(err)
		}
		analyticMs := float64(time.Since(t0)) / 1e6
		gap := 0.0
		if info.LB.Total > 0 {
			gap = (info.Latency/info.LB.Total - 1) * 100
		}

		pl, err := mcmpart.NewPlanner(c.pkg)
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		aRes, err := pl.Plan(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodAnalytic})
		if err != nil {
			fatal(err)
		}
		t0 = time.Now()
		unseeded, err := pl.Plan(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: budget, Seed: 7})
		if err != nil {
			fatal(err)
		}
		searchMs := float64(time.Since(t0)) / 1e6
		seeded, err := pl.Plan(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: budget, Seed: 7, SeedFromAnalytic: true})
		if err != nil {
			fatal(err)
		}
		seededN, _ := seeded.SamplesToImprovement(aRes.Improvement)
		unseededN, _ := unseeded.SamplesToImprovement(aRes.Improvement)

		out = append(out, ScaleCase{
			Nodes:               c.nodes,
			Package:             c.pkg.Name,
			Graph:               g.Name(),
			GenerateMs:          genMs,
			AnalyticMs:          analyticMs,
			ChipsUsed:           info.Chips,
			BoundGapPct:         gap,
			AnalyticImprovement: aRes.Improvement,
			SearchMs:            searchMs,
			SearchBudget:        budget,
			SeededSamples:       seededN,
			UnseededSamples:     unseededN,
		})
	}
	return out
}
