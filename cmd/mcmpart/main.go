// Command mcmpart partitions a computation graph onto an MCM package.
//
// Usage:
//
//	mcmpart -graph model.json [-mcm edge36] [-method rl|random|sa|greedy]
//	        [-budget 200] [-seed 1] [-workers N] [-sim] [-dot out.dot]
//
// The graph JSON format is produced by cmd/mcmgen (or any tool emitting
// {"name", "nodes", "edges"}; see internal/graph). The chosen partition is
// printed as JSON on stdout together with its evaluation.
//
// -mcm selects the target package: a preset name (dev4, dev8, dev8bi,
// edge36, het4, mesh16) or a path to a package JSON descriptor (see
// cmd/mcmgen -what packages for examples), so heterogeneous chiplet mixes
// and non-ring interconnects are one flag away. -package is the deprecated
// alias of -mcm.
//
// -workers bounds the worker pool the RL method's rollout collection and
// the math kernels fan out over (default: all CPUs). The chosen partition
// is bit-for-bit identical for a given -seed at any -workers value; the
// flag trades wall-clock only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcmpart"
	"mcmpart/internal/graph"
	"mcmpart/internal/parallel"
)

func main() {
	graphPath := flag.String("graph", "", "path to the graph JSON (required; \"bert\" for the built-in BERT)")
	mcmSpec := flag.String("mcm", "", "target package: preset name (dev4, dev8, dev8bi, edge36, het4, mesh16) or package JSON path")
	pkgName := flag.String("package", "", "deprecated alias of -mcm")
	method := flag.String("method", "rl", "partitioning method: greedy, random, sa, rl")
	budget := flag.Int("budget", 200, "sample budget for search methods")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(),
		"worker-pool size for rollouts and kernels (results are identical at any value)")
	sim := flag.Bool("sim", false, "evaluate candidates on the hardware simulator (slower, checks memory)")
	dotPath := flag.String("dot", "", "also write the partitioned graph as Graphviz DOT")
	flag.Parse()

	parallel.SetDefault(*workers)

	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	var g *graph.Graph
	if *graphPath == "bert" {
		g = mcmpart.BERT()
	} else {
		data, err := os.ReadFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		g = new(graph.Graph)
		if err := json.Unmarshal(data, g); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *graphPath, err))
		}
	}
	spec := *mcmSpec
	if spec == "" {
		spec = *pkgName
	}
	if spec == "" {
		spec = "edge36"
	}
	pkg, err := loadPackage(spec)
	if err != nil {
		fatal(err)
	}
	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{
		Method:       mcmpart.Method(*method),
		SampleBudget: *budget,
		Seed:         *seed,
		UseSimulator: *sim,
	})
	if err != nil {
		fatal(err)
	}
	hw := mcmpart.Evaluate(g, pkg, res.Partition)
	out := struct {
		Graph       string                 `json:"graph"`
		Package     string                 `json:"package"`
		Method      string                 `json:"method"`
		Partition   mcmpart.Partition      `json:"partition"`
		Throughput  float64                `json:"throughput"`
		Improvement float64                `json:"improvement_over_greedy"`
		Samples     int                    `json:"samples"`
		Hardware    mcmpart.HardwareResult `json:"hardware"`
	}{g.Name(), pkg.Name, *method, res.Partition, res.Throughput, res.Improvement, res.Samples, hw}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := g.WriteDOT(f, res.Partition); err != nil {
			fatal(err)
		}
	}
}

// loadPackage resolves -mcm: preset names first, then package JSON files.
func loadPackage(spec string) (*mcmpart.Package, error) {
	pkg, presetErr := mcmpart.PackagePreset(spec)
	if presetErr == nil {
		return pkg, nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		// Neither a preset nor a readable file; the preset error carries
		// the authoritative list of valid names.
		return nil, fmt.Errorf("-mcm %q is not a package JSON file (%w); %v", spec, err, presetErr)
	}
	return mcmpart.ParsePackageJSON(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcmpart:", err)
	os.Exit(1)
}
