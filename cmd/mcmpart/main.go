// Command mcmpart partitions a computation graph onto an MCM package
// through the library's Planner session API.
//
// Usage:
//
//	mcmpart -graph model.json [-mcm edge36] [-method rl|random|sa|greedy|analytic|zeroshot|finetune]
//	        [-budget 200] [-seed 1] [-workers N] [-sim] [-dot out.dot]
//	        [-pretrain N] [-policy in.policy.json] [-save-policy out.policy.json]
//	        [-timeout 30s] [-progress]
//
// The graph JSON format is produced by cmd/mcmgen (or any tool emitting
// {"name", "nodes", "edges"}; see internal/graph). The chosen partition is
// printed as JSON on stdout together with its evaluation.
//
// -method analytic selects the static-analysis fast path (internal/analyze):
// a deterministic propagation-based partitioner that never calls an
// evaluator, plans 100k-node graphs in tens of milliseconds, and reports a
// sound cost lower bound alongside the plan. -budget is ignored; -seed does
// not change the result.
//
// -mcm selects the target package: a preset name (dev4, dev8, dev8bi,
// edge36, het4, mesh16) or a path to a package JSON descriptor (see
// cmd/mcmgen -what packages for examples). -package is the deprecated
// alias of -mcm.
//
// Transferability flags (the paper's pretrain → zero-shot / fine-tune
// workflow):
//
//   - -pretrain N pre-trains the planner on the first N synthetic corpus
//     graphs (a fifth held out for validation) before planning.
//   - -policy loads a saved policy artifact instead; the artifact's
//     package fingerprint must match -mcm.
//   - -save-policy persists the pre-trained policy for later runs.
//   - -method zeroshot / finetune deploy the policy on the target graph.
//
// -timeout bounds wall-clock. A timeout during planning still prints the
// best partition found so far (with "timed_out": true in the output); a
// timeout during -pretrain saves the best-so-far policy (when -save-policy
// is set) and exits without planning — the pre-training work is preserved
// either way.
//
// -workers bounds the worker pool the RL method's rollout collection and
// the math kernels fan out over (default: all CPUs). The chosen partition
// is bit-for-bit identical for a given -seed at any -workers value; the
// flag trades wall-clock only.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mcmpart"
	"mcmpart/internal/graph"
	"mcmpart/internal/parallel"
)

func main() {
	graphPath := flag.String("graph", "", "path to the graph JSON (required; \"bert\" for the built-in BERT)")
	mcmSpec := flag.String("mcm", "", "target package: preset name (dev4, dev8, dev8bi, edge36, het4, mesh16) or package JSON path")
	pkgName := flag.String("package", "", "deprecated alias of -mcm")
	method := flag.String("method", "rl", "partitioning method: greedy, random, sa, rl, zeroshot, finetune, or analytic (evaluator-free static-analysis fast path; scales to 100k-node graphs, ignores -budget)")
	budget := flag.Int("budget", 200, "sample budget for search methods")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(),
		"worker-pool size for rollouts and kernels (results are identical at any value)")
	sim := flag.Bool("sim", false, "evaluate candidates on the hardware simulator (slower, checks memory)")
	dotPath := flag.String("dot", "", "also write the partitioned graph as Graphviz DOT")
	pretrainN := flag.Int("pretrain", 0, "pre-train on the first N synthetic corpus graphs before planning")
	policyPath := flag.String("policy", "", "load a saved policy artifact (must match the package)")
	savePolicy := flag.String("save-policy", "", "save the pre-trained policy artifact to this path")
	timeout := flag.Duration("timeout", 0, "wall-clock bound; on expiry the best-so-far partition is printed (0 = none)")
	progress := flag.Bool("progress", false, "stream (samples, best-so-far) progress to stderr")
	flag.Parse()

	parallel.SetDefault(*workers)

	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	var g *graph.Graph
	if *graphPath == "bert" {
		g = mcmpart.BERT()
	} else {
		data, err := os.ReadFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		g = new(graph.Graph)
		if err := json.Unmarshal(data, g); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *graphPath, err))
		}
	}
	spec := *mcmSpec
	if spec == "" {
		spec = *pkgName
	}
	if spec == "" {
		spec = "edge36"
	}
	pkg, err := loadPackage(spec)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	planner, err := mcmpart.NewPlanner(pkg)
	if err != nil {
		fatal(err)
	}
	if *policyPath != "" && *pretrainN > 0 {
		fatal(fmt.Errorf("-policy and -pretrain are mutually exclusive"))
	}
	if *policyPath != "" {
		if err := planner.LoadPolicy(*policyPath); err != nil {
			fatal(err)
		}
	}
	pretrainInterrupted := false
	if *pretrainN > 0 {
		corpus := mcmpart.CorpusGraphs(*seed)
		if *pretrainN > len(corpus) {
			fatal(fmt.Errorf("-pretrain %d exceeds the %d-graph corpus", *pretrainN, len(corpus)))
		}
		opts := mcmpart.PretrainOptions{Seed: *seed, Workers: *workers}
		if *progress {
			opts.Progress = progressFunc("pretrain")
		}
		fmt.Fprintf(os.Stderr, "mcmpart: pre-training on %d corpus graphs...\n", *pretrainN)
		if _, err := planner.Pretrain(ctx, corpus[:*pretrainN], opts); err != nil {
			// A timeout/cancel mid-pretrain still installed the
			// best-so-far policy; preserve it (save below) instead of
			// discarding the work, but skip the plan — its budget is gone.
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				fatal(err)
			}
			pretrainInterrupted = true
			fmt.Fprintf(os.Stderr, "mcmpart: %v during pre-training; best-so-far policy installed\n", err)
		}
	}
	if *savePolicy != "" {
		if err := planner.SavePolicy(*savePolicy); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mcmpart: saved policy artifact to %s\n", *savePolicy)
	}
	if pretrainInterrupted {
		fatal(fmt.Errorf("timeout expired during pre-training; plan not run"))
	}

	planOpts := mcmpart.PlanOptions{
		Method:       mcmpart.Method(*method),
		SampleBudget: *budget,
		Seed:         *seed,
		UseSimulator: *sim,
	}
	if *progress {
		planOpts.Progress = progressFunc("plan")
	}
	res, err := planner.Plan(ctx, g, planOpts)
	timedOut := false
	if err != nil {
		if res == nil || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		// Deadline hit with a best-so-far result: report it.
		timedOut = true
		fmt.Fprintf(os.Stderr, "mcmpart: %v; reporting best-so-far after %d samples\n", err, res.Samples)
	}
	hw := mcmpart.Evaluate(g, pkg, res.Partition)
	out := struct {
		Graph       string                 `json:"graph"`
		Package     string                 `json:"package"`
		Method      string                 `json:"method"`
		Partition   mcmpart.Partition      `json:"partition"`
		Throughput  float64                `json:"throughput"`
		Improvement float64                `json:"improvement_over_greedy"`
		Samples     int                    `json:"samples"`
		TimedOut    bool                   `json:"timed_out,omitempty"`
		FailCounts  map[string]int         `json:"fail_counts,omitempty"`
		Hardware    mcmpart.HardwareResult `json:"hardware"`
	}{g.Name(), pkg.Name, *method, res.Partition, res.Throughput, res.Improvement, res.Samples, timedOut, res.FailCounts, hw}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := g.WriteDOT(f, res.Partition); err != nil {
			fatal(err)
		}
	}
}

// progressFunc returns a stderr progress streamer that reports every 50
// samples (and the first).
func progressFunc(stage string) mcmpart.ProgressFunc {
	start := time.Now()
	return func(ev mcmpart.ProgressEvent) {
		if ev.Samples%50 == 0 || ev.Samples == 1 {
			fmt.Fprintf(os.Stderr, "mcmpart: %s %6d samples  best %.3fx  (%.1fs)\n",
				stage, ev.Samples, ev.BestImprovement, time.Since(start).Seconds())
		}
	}
}

// loadPackage resolves -mcm: preset names first, then package JSON files.
func loadPackage(spec string) (*mcmpart.Package, error) {
	pkg, presetErr := mcmpart.PackagePreset(spec)
	if presetErr == nil {
		return pkg, nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		// Neither a preset nor a readable file; the preset error carries
		// the authoritative list of valid names.
		return nil, fmt.Errorf("-mcm %q is not a package JSON file (%w); %v", spec, err, presetErr)
	}
	return mcmpart.ParsePackageJSON(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcmpart:", err)
	os.Exit(1)
}
