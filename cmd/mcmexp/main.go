// Command mcmexp regenerates the paper's tables and figures, plus the
// heterogeneity/topology sweep that goes beyond the paper's single
// homogeneous-ring platform.
//
// Usage:
//
//	mcmexp -exp fig5|table2|fig6|table3|fig7|table1|hetero|conformance|all
//	       [-scale quick|full] [-seed N] [-workers N] [-mcm p1,p2,...]
//	       [-timeout 30m]
//
// -mcm restricts the hetero sweep to a comma-separated list of package
// presets (default: dev4,het4,dev8,dev8bi,mesh16) and the conformance
// sweep likewise (default: all six presets).
//
// -exp conformance runs the scenario-fuzzing conformance battery
// (internal/conformance): generated random graphs x package presets x
// planning methods, checked against the differential oracles of DESIGN.md
// §9. The report is byte-identical for a given -seed; any violation line
// names the (seed, graph index) pair that reproduces it, and the run exits
// non-zero so CI can gate on it.
//
// -timeout aborts a run that exceeds the given wall-clock budget (the
// search loops observe context cancellation and stop at the next sample
// or iteration boundary).
//
// Quick scale (default) runs reduced budgets sized for one CPU core; full
// scale runs the paper's budgets (see DESIGN.md for the mapping).
//
// -workers bounds the experiment fan-out (trials, rollout collection,
// corpus sampling, large matmuls); it defaults to all CPUs. Results are
// bit-for-bit identical for a given -seed at any -workers value — the
// worker pool splits work by item index and derives each item's randomness
// from (seed, index), so parallelism changes wall-clock only (see
// DESIGN.md, "Parallel execution engine").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mcmpart/internal/experiments"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig5, table2, fig6, table3, fig7, hetero, conformance, all")
	scaleFlag := flag.String("scale", "quick", "scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(),
		"worker-pool size for trials/rollouts/sampling (results are identical at any value)")
	mcmList := flag.String("mcm", "", "comma-separated package presets for the hetero sweep (default dev4,het4,dev8,dev8bi,mesh16)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
	flag.Parse()

	parallel.SetDefault(*workers)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	run := func(name string) bool { return *exp == name || *exp == "all" }

	if run("table1") {
		res, err := experiments.Table1(*seed, 200)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
	}

	var f5 *experiments.Fig5Result
	if run("fig5") || run("table2") || run("fig6") || run("table3") {
		f5, err = experiments.Figure5(ctx, experiments.Fig5Config{Scale: scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
	}
	if run("fig5") {
		fmt.Println(f5.Format())
	}
	if run("table2") {
		fmt.Println(experiments.Table2(f5).Format("Table 2: samples to reach geomean improvement (test set, cost model)"))
	}

	var f6 *experiments.Fig6Result
	if run("fig6") || run("table3") {
		f6, err = experiments.Figure6(ctx, experiments.Fig6Config{
			Scale:      scale,
			Seed:       *seed,
			Pretrained: f5.Pretrained,
			PolicyCfg:  f5.PolicyCfg,
		})
		if err != nil {
			fatal(err)
		}
	}
	if run("fig6") {
		fmt.Println(f6.Format())
	}
	if run("table3") {
		t3 := experiments.Table3(f6)
		fmt.Println(t3.Format("Table 3: samples to reach BERT improvement (hardware simulator)"))
		fmt.Println(experiments.SearchTimeSummary(f6, t3))
		fmt.Println()
	}

	if run("fig7") {
		res, err := experiments.Figure7(experiments.Fig7Config{Scale: scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
	}

	if run("hetero") {
		cfg := experiments.HeteroConfig{Scale: scale, Seed: *seed}
		for _, name := range parsePresets(*mcmList) {
			pkg, err := mcm.Preset(name)
			if err != nil {
				fatal(err)
			}
			cfg.Packages = append(cfg.Packages, pkg)
		}
		res, err := experiments.HeteroSweep(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
	}

	// The conformance gate runs last so a violation's non-zero exit never
	// truncates the independent experiments of an -exp all run.
	if run("conformance") {
		cfg := experiments.ConformanceConfig{Scale: scale, Seed: *seed}
		for _, name := range parsePresets(*mcmList) {
			if _, err := mcm.Preset(name); err != nil {
				fatal(err)
			}
			cfg.Presets = append(cfg.Presets, name)
		}
		res, err := experiments.ConformanceSweep(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		if vs := res.Violations(); len(vs) != 0 {
			fatal(fmt.Errorf("conformance: %d oracle violations (reproduce with -seed %d)", len(vs), *seed))
		}
	}
}

// parsePresets splits a -mcm list into trimmed preset names ("" → none).
func parsePresets(list string) []string {
	if list == "" {
		return nil
	}
	var names []string
	for _, name := range strings.Split(list, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcmexp:", err)
	os.Exit(1)
}
