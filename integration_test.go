package mcmpart_test

import (
	"context"
	"math/rand"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/pretrain"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// TestEndToEndTransferPipeline exercises the full Figure 4 workflow on small
// budgets: corpus generation, pre-training with checkpoints and validation
// selection, zero-shot and fine-tuned deployment on a held-out graph, and a
// final hardware-simulator check of the best partition found.
func TestEndToEndTransferPipeline(t *testing.T) {
	pkg := mcm.Dev8()
	model := costmodel.New(pkg)
	factory := func(g *graph.Graph) (*rl.Env, error) {
		pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
		if err != nil {
			return nil, err
		}
		baseTh, _ := model.Evaluate(g, search.Greedy(g, pkg.Chips, pkg.SRAMBytes))
		env := rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh)
		env.UseSampleMode = true
		return env, nil
	}
	ds := workload.Corpus(11)
	cfg := pretrain.QuickConfig(pkg.Chips)
	cfg.Policy = rl.Config{Chips: pkg.Chips, Hidden: 12, SAGELayers: 1, Iterations: 2}
	cfg.PPO.Rollouts = 4
	cfg.PPO.Epochs = 2
	cfg.TotalSamples = 64
	cfg.Checkpoints = 3
	cfg.ValidationSamples = 4
	res, err := pretrain.Run(context.Background(), ds.Train[:3], ds.Validation[:2], factory, cfg)
	if err != nil {
		t.Fatal(err)
	}

	unseen := ds.Test[0]
	env, err := factory(unseen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	policy := rl.NewPolicy(cfg.Policy, rng)
	if err := policy.Restore(res.Best()); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.FineTune(context.Background(), policy, env, cfg.PPO, 16, rng); err != nil {
		t.Fatal(err)
	}
	if env.Best == nil {
		t.Fatal("fine-tuning found no valid partition")
	}
	if err := env.Best.Validate(unseen, pkg.Chips); err != nil {
		t.Fatalf("best partition invalid: %v", err)
	}
	// The deployment partition found on the cost model must also be
	// assessable on the simulator (it may or may not fit memory; the
	// simulator must give a definitive verdict, not an error).
	sim := hwsim.New(pkg, hwsim.Options{Seed: 12})
	hwres := sim.Evaluate(unseen, env.Best)
	if hwres.Valid && hwres.Throughput <= 0 {
		t.Fatal("valid hardware run must report positive throughput")
	}
}

// TestSearchMethodsAgreeOnEvaluator checks that all strategies respect the
// shared environment contract on the same graph: budgets consumed, monotone
// best-so-far histories, valid best partitions.
func TestSearchMethodsAgreeOnEvaluator(t *testing.T) {
	pkg := mcm.Dev8()
	g := workload.UnrolledLSTM(workload.RNNConfig{
		Name: "int-lstm", Steps: 6, Input: 128, Hidden: 256, Vocab: 512, Batch: 8,
	})
	model := costmodel.New(pkg)
	mk := func() *rl.Env {
		pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		baseTh, _ := model.Evaluate(g, search.Greedy(g, pkg.Chips, pkg.SRAMBytes))
		env := rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh)
		env.UseSampleMode = true
		return env
	}
	rng := rand.New(rand.NewSource(13))

	random := mk()
	search.Random(context.Background(), random, 25, rng)
	sa := mk()
	search.Anneal(context.Background(), sa, 25, search.SAConfig{}, rng)
	rlEnv := mk()
	policy := rl.NewPolicy(rl.Config{Chips: pkg.Chips, Hidden: 12, SAGELayers: 1, Iterations: 1}, rng)
	trainer := rl.NewTrainer(policy, rl.PPOConfig{
		Rollouts: 4, MiniBatches: 1, Epochs: 1, LR: 3e-4, ClipEps: 0.2, ValueCoef: 0.5, EntropyCoef: 0.01,
	}, rng)
	if _, err := trainer.TrainUntil(context.Background(), []*rl.Env{rlEnv}, 25); err != nil {
		t.Fatal(err)
	}

	for name, env := range map[string]*rl.Env{"random": random, "sa": sa, "rl": rlEnv} {
		if env.Samples < 25 {
			t.Fatalf("%s consumed only %d samples", name, env.Samples)
		}
		if env.Best == nil {
			t.Fatalf("%s found nothing", name)
		}
		if err := env.Best.Validate(g, pkg.Chips); err != nil {
			t.Fatalf("%s best invalid: %v", name, err)
		}
		for i := 1; i < len(env.History); i++ {
			if env.History[i] < env.History[i-1] {
				t.Fatalf("%s history not monotone", name)
			}
		}
	}
}

// TestGreedyBaselineFitsHardwareAcrossCorpus is a failure-injection guard:
// the baseline every experiment normalizes against must itself pass the
// dynamic memory constraint, or improvement ratios become meaningless.
func TestGreedyBaselineFitsHardwareAcrossCorpus(t *testing.T) {
	pkg := mcm.Edge36()
	sim := hwsim.New(pkg, hwsim.Options{})
	for _, g := range workload.CorpusGraphs(1)[:25] {
		p := search.Greedy(g, pkg.Chips, pkg.SRAMBytes)
		res := sim.Evaluate(g, p)
		if !res.Valid {
			t.Errorf("%s: greedy baseline fails on hardware: %s", g.Name(), res.FailReason)
		}
	}
	bert := workload.BERT()
	if res := sim.Evaluate(bert, search.Greedy(bert, pkg.Chips, pkg.SRAMBytes)); !res.Valid {
		t.Errorf("BERT greedy baseline fails on hardware: %s", res.FailReason)
	}
}
