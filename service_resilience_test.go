package mcmpart_test

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"mcmpart"
	"mcmpart/internal/faultinject"
)

// gatedOptions returns plan options whose Progress blocks at the first
// sample until release is closed — the deterministic way to hold a plan
// "in flight" while the test arranges concurrent requests around it.
// started is closed once the plan is inside the planner.
func gatedOptions(started, release chan struct{}) mcmpart.PlanOptions {
	var once sync.Once
	return mcmpart.PlanOptions{
		Method:       mcmpart.MethodRandom,
		SampleBudget: 30,
		Seed:         11,
		Progress: func(mcmpart.ProgressEvent) {
			once.Do(func() { close(started) })
			<-release
		},
	}
}

// TestSingleFlightCoalescing pins the tentpole contract: N concurrent
// identical cold requests invoke the planner exactly once, every caller
// gets a bit-identical result, and the stats account for 1 execution and
// N-1 coalesced requests.
func TestSingleFlightCoalescing(t *testing.T) {
	const n = 16
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2})
	g := smallGraph(t)
	started := make(chan struct{})
	release := make(chan struct{})
	opts := gatedOptions(started, release)

	leader, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the leader is inside the planner; the flight is registered

	followerOpts := opts
	followerOpts.Progress = nil
	jobs := make([]*mcmpart.Job, 0, n-1)
	for i := 0; i < n-1; i++ {
		job, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: followerOpts})
		if err != nil {
			t.Fatal(err)
		}
		if !job.Status().Coalesced {
			t.Fatalf("follower %d not coalesced", i)
		}
		jobs = append(jobs, job)
	}
	close(release)

	want, err := leader.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		got, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		if err := resultsBitIdentical(want, got); err != nil {
			t.Fatalf("follower %d diverged from leader: %v", i, err)
		}
	}

	st := svc.Stats()
	if st.PlansExecuted != 1 {
		t.Fatalf("PlansExecuted = %d, want 1 (the whole point of single-flight)", st.PlansExecuted)
	}
	if st.PlansCoalesced != n-1 {
		t.Fatalf("PlansCoalesced = %d, want %d", st.PlansCoalesced, n-1)
	}
	if st.JobsDone != n {
		t.Fatalf("JobsDone = %d, want %d", st.JobsDone, n)
	}

	// And the shared result is the same plan a lone request computes.
	control := newTestService(t, mcmpart.ServiceOptions{})
	res, err := control.Plan(context.Background(), g, followerOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(want, res); err != nil {
		t.Fatalf("coalesced result differs from a lone plan: %v", err)
	}
}

// TestCoalescingDisabled pins the DisableCoalescing escape hatch: identical
// concurrent requests each invoke the planner.
func TestCoalescingDisabled(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2, DisableCoalescing: true, CacheEntries: -1})
	g := smallGraph(t)
	started := make(chan struct{})
	release := make(chan struct{})
	opts := gatedOptions(started, release)

	first, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	secondOpts := opts
	secondOpts.Progress = nil
	second, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: secondOpts})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status().Coalesced {
		t.Fatal("coalescing disabled, but the second request coalesced")
	}
	close(release)
	a, err := first.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := second.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(a, b); err != nil {
		t.Fatalf("determinism broken without coalescing: %v", err)
	}
	if st := svc.Stats(); st.PlansExecuted != 2 || st.PlansCoalesced != 0 {
		t.Fatalf("stats %+v: want 2 executions, 0 coalesced", st)
	}
}

// TestCoalescedFollowerDetaches pins follower cancellation: a coalesced
// request that gives up is finished cancelled without disturbing the
// leader or the other followers.
func TestCoalescedFollowerDetaches(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1})
	g := smallGraph(t)
	started := make(chan struct{})
	release := make(chan struct{})

	leader, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: gatedOptions(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	plain := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 30, Seed: 11}
	quitter, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: plain})
	if err != nil {
		t.Fatal(err)
	}
	stayer, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: plain})
	if err != nil {
		t.Fatal(err)
	}

	quitter.Cancel()
	if _, err := quitter.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("detached follower error = %v, want context.Canceled", err)
	}

	close(release)
	want, err := leader.Wait(context.Background())
	if err != nil {
		t.Fatalf("leader must be untouched by a follower detaching: %v", err)
	}
	got, err := stayer.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(want, got); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.PlansExecuted != 1 || st.JobsCancelled != 1 || st.JobsDone != 2 {
		t.Fatalf("stats %+v: want 1 executed, 1 cancelled, 2 done", st)
	}
}

// TestLeaderCancellationPromotesFollower pins the hand-off: cancelling the
// leader keeps its best-so-far result for the leader alone, and a waiting
// follower re-plans from scratch — same seed, so the same answer a lone
// request would have gotten.
func TestLeaderCancellationPromotesFollower(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1})
	g := smallGraph(t)
	started := make(chan struct{})
	release := make(chan struct{})

	leader, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: gatedOptions(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	plain := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 30, Seed: 11}
	follower, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: plain})
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Status().Coalesced {
		t.Fatal("second request did not coalesce")
	}

	leader.Cancel()
	close(release) // let the leader's plan observe the cancellation

	if _, err := leader.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	got, err := follower.Wait(context.Background())
	if err != nil {
		t.Fatalf("promoted follower must complete: %v", err)
	}

	control := newTestService(t, mcmpart.ServiceOptions{})
	want, err := control.Plan(context.Background(), g, plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(want, got); err != nil {
		t.Fatalf("promoted follower's re-plan diverged: %v", err)
	}
	if st := svc.Stats(); st.PlansExecuted != 2 {
		t.Fatalf("PlansExecuted = %d, want 2 (leader's aborted run + follower's re-plan)", st.PlansExecuted)
	}
}

// TestDiskCacheSurvivesRestart pins the persistent tier at the Service
// layer: a plan computed by one service is served bit-identically — and
// counted as a disk hit — by a fresh service over the same directory.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "plans")
	g := smallGraph(t)
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 30, Seed: 5}

	first := newTestService(t, mcmpart.ServiceOptions{CacheDir: dir})
	want, err := first.Plan(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.DiskCacheWrites != 1 {
		t.Fatalf("DiskCacheWrites = %d, want 1", st.DiskCacheWrites)
	}
	first.Close() // flush, then "restart"

	second := newTestService(t, mcmpart.ServiceOptions{CacheDir: dir})
	job, err := second.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !job.Status().Cached {
		t.Fatal("restart plan not served from cache")
	}
	if err := resultsBitIdentical(want, got); err != nil {
		t.Fatalf("disk-tier result not bit-identical: %v", err)
	}
	st := second.Stats()
	if st.DiskCacheHits != 1 || st.PlansExecuted != 0 {
		t.Fatalf("stats %+v: want 1 disk hit, 0 plans executed", st)
	}
}

// TestPlanPanicContained pins panic containment: an injected evaluator
// panic fails that job with ErrPlanPanic and the service keeps planning.
func TestPlanPanicContained(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1})
	g := smallGraph(t)
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 20, Seed: 3}

	faultinject.Enable(faultinject.NewSet(1, faultinject.Rule{
		Point: faultinject.PointPlanEvaluate,
		Fault: faultinject.Fault{Err: errors.New("poisoned request"), Panic: true},
		Every: 1,
	}))
	t.Cleanup(faultinject.Disable)
	if _, err := svc.Plan(context.Background(), g, opts); !errors.Is(err, mcmpart.ErrPlanPanic) {
		t.Fatalf("err = %v, want ErrPlanPanic", err)
	}
	faultinject.Disable()

	res, err := svc.Plan(context.Background(), g, opts)
	if err != nil {
		t.Fatalf("service did not survive the panic: %v", err)
	}
	if err := mcmpart.Validate(g, svc.Package(), res.Partition); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.JobsFailed != 1 || st.JobsDone != 1 {
		t.Fatalf("stats %+v: want 1 failed, 1 done", st)
	}
}

// TestDrainLetsInflightFinish pins the graceful half of the drain
// contract: admission stops at once, the admitted job runs to a normal
// completion, and Drain returns nil.
func TestDrainLetsInflightFinish(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1})
	g := smallGraph(t)
	started := make(chan struct{})
	release := make(chan struct{})
	job, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: gatedOptions(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	svc.BeginDrain()
	if !svc.Stats().Draining {
		t.Fatal("Stats().Draining = false after BeginDrain")
	}
	if _, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{Method: mcmpart.MethodGreedy}}); !errors.Is(err, mcmpart.ErrServiceClosed) {
		t.Fatalf("submit during drain: err = %v, want ErrServiceClosed", err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := job.Status(); st.State != mcmpart.JobDone {
		t.Fatalf("in-flight job state after drain = %s, want done", st.State)
	}
}

// TestDrainDeadlineCancelsBestSoFar pins the forced half: when the drain
// deadline expires, remaining jobs are cancelled and keep their
// best-so-far results, and Drain reports the deadline error.
func TestDrainDeadlineCancelsBestSoFar(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1})
	g := smallGraph(t)
	// A budget far too large to finish: the plan checks its context at
	// every sample, so the drain deadline stops it promptly.
	job, err := svc.Submit(context.Background(), mcmpart.PlanRequest{
		Graph:   g,
		Options: mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 50_000_000, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	res, jerr := job.Result()
	if job.Status().State != mcmpart.JobCancelled || !errors.Is(jerr, context.Canceled) {
		t.Fatalf("job after forced drain: state=%s err=%v", job.Status().State, jerr)
	}
	if res == nil {
		t.Fatal("forced drain must keep the best-so-far result")
	}
	if err := mcmpart.Validate(g, svc.Package(), res.Partition); err != nil {
		t.Fatal(err)
	}
}

// TestCloseRacingSubmissions hammers Close against concurrent
// Submit/Plan/PlanBatch: every accepted job must reach a terminal state,
// every rejected call must see ErrServiceClosed (or ErrBusy), and no
// goroutines may leak.
func TestCloseRacingSubmissions(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2, QueueDepth: 4})
	g := smallGraph(t)
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 25, Seed: 6}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobs []*mcmpart.Job
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				job, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: opts})
				if err == nil {
					mu.Lock()
					jobs = append(jobs, job)
					mu.Unlock()
				} else if !errors.Is(err, mcmpart.ErrServiceClosed) && !errors.Is(err, mcmpart.ErrBusy) {
					t.Errorf("Submit: unexpected error %v", err)
				}
			case 1:
				if _, err := svc.Plan(context.Background(), g, opts); err != nil &&
					!errors.Is(err, mcmpart.ErrServiceClosed) && !errors.Is(err, mcmpart.ErrBusy) &&
					!errors.Is(err, context.Canceled) {
					t.Errorf("Plan: unexpected error %v", err)
				}
			default:
				if _, err := svc.PlanBatch(context.Background(), []mcmpart.PlanRequest{
					{Graph: g, Options: opts}, {Graph: g, Options: opts},
				}); err != nil &&
					!errors.Is(err, mcmpart.ErrServiceClosed) && !errors.Is(err, mcmpart.ErrBusy) &&
					!errors.Is(err, context.Canceled) {
					t.Errorf("PlanBatch: unexpected error %v", err)
				}
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let some submissions land first
	svc.Close()
	wg.Wait()

	if _, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: opts}); !errors.Is(err, mcmpart.ErrServiceClosed) {
		t.Fatalf("post-close Submit: err = %v, want ErrServiceClosed", err)
	}
	for _, job := range jobs {
		select {
		case <-job.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s never reached a terminal state after Close", job.ID())
		}
		if st := job.Status(); !st.State.Terminal() {
			t.Fatalf("job %s state %s not terminal", job.ID(), st.State)
		}
	}

	// Leak check: goroutine count settles back to (about) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainThenCloseIdempotent pins that the shutdown paths compose: any
// order and repetition of BeginDrain/Drain/Close is safe.
func TestDrainThenCloseIdempotent(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{})
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.BeginDrain()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
