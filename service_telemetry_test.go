package mcmpart_test

// Tests for the telemetry layer and the accounting bugfixes it exposed:
// live queue depth (was: capacity), snapshot coherence under concurrent
// load, PlanBatch cancellation mapping, and the /metrics exposition
// agreeing with /v1/stats.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mcmpart"
)

// TestQueueDepthReportsLiveDepth pins the QueueDepth bugfix: the stat
// must report how many jobs are waiting right now (0 when idle, rising
// under pressure, falling back to 0), with the configured bound moved to
// the new QueueCapacity field. Pre-fix, QueueDepth always equaled the
// capacity.
func TestQueueDepthReportsLiveDepth(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1, QueueDepth: 2})
	g := smallGraph(t)
	ctx := context.Background()

	st := svc.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("idle QueueDepth = %d, want 0 (the live depth, not the capacity)", st.QueueDepth)
	}
	if st.QueueCapacity != 2 {
		t.Fatalf("QueueCapacity = %d, want 2", st.QueueCapacity)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	blocker, err := svc.Submit(ctx, mcmpart.PlanRequest{Graph: g, Options: gatedOptions(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now pinned mid-plan

	var queued []*mcmpart.Job
	for i := 0; i < 2; i++ {
		job, err := svc.Submit(ctx, mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{
			Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: int64(100 + i),
		}})
		if err != nil {
			t.Fatalf("queueing submission %d: %v", i, err)
		}
		queued = append(queued, job)
	}

	st = svc.Stats()
	if st.QueueDepth != 2 {
		t.Fatalf("QueueDepth with a full queue = %d, want 2", st.QueueDepth)
	}
	if st.JobsQueued != 2 {
		t.Fatalf("JobsQueued = %d, want 2", st.JobsQueued)
	}

	// One more distinct submission must shed — and be counted as shed,
	// not submitted.
	_, err = svc.Submit(ctx, mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{
		Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 999,
	}})
	if !errors.Is(err, mcmpart.ErrBusy) {
		t.Fatalf("submission beyond capacity returned %v, want ErrBusy", err)
	}
	st = svc.Stats()
	if st.JobsShed != 1 {
		t.Fatalf("JobsShed = %d, want 1", st.JobsShed)
	}
	if st.JobsSubmitted != 3 {
		t.Fatalf("JobsSubmitted = %d, want 3 (the shed request must not count)", st.JobsSubmitted)
	}

	close(release)
	<-blocker.Done()
	for _, j := range queued {
		<-j.Done()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = svc.Stats()
		if st.QueueDepth == 0 && st.JobsQueued == 0 && st.JobsRunning == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsSnapshotCoherentUnderLoad pins the snapshot-coherence bugfix:
// in every snapshot — even sampled mid-burst — CacheHits+CacheMisses
// must be >= JobsSubmitted (each admission counts its cache outcome
// first), and the two sides must be equal once the load is done. Pre-fix,
// Stats read the cache counters and the job counters at different
// instants, so a concurrent sampler could observe submitted > hits+misses.
func TestStatsSnapshotCoherentUnderLoad(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2, QueueDepth: 256})
	g := smallGraph(t)
	const loaders = 4
	const perLoader = 25

	var wg sync.WaitGroup
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perLoader; i++ {
				// 7 distinct keys: a mix of cold plans, cache hits, and
				// coalesced followers.
				job, err := svc.Submit(context.Background(), mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{
					Method: mcmpart.MethodRandom, SampleBudget: 5, Seed: int64(1 + (w*perLoader+i)%7),
				}})
				if err != nil {
					t.Errorf("loader %d submit %d: %v", w, i, err)
					return
				}
				<-job.Done()
			}
		}(w)
	}
	loadDone := make(chan struct{})
	go func() { wg.Wait(); close(loadDone) }()

	samples := 0
sampling:
	for {
		st := svc.Stats()
		samples++
		if got := st.CacheHits + st.CacheMisses; got < st.JobsSubmitted {
			t.Errorf("incoherent snapshot %d: CacheHits %d + CacheMisses %d < JobsSubmitted %d",
				samples, st.CacheHits, st.CacheMisses, st.JobsSubmitted)
		}
		select {
		case <-loadDone:
			break sampling
		default:
			runtime.Gosched()
		}
	}

	st := svc.Stats()
	if st.CacheHits+st.CacheMisses != st.JobsSubmitted {
		t.Fatalf("at quiescence CacheHits %d + CacheMisses %d != JobsSubmitted %d",
			st.CacheHits, st.CacheMisses, st.JobsSubmitted)
	}
	if st.JobsSubmitted != loaders*perLoader {
		t.Fatalf("JobsSubmitted = %d, want %d", st.JobsSubmitted, loaders*perLoader)
	}
	if st.JobsDone != st.JobsSubmitted {
		t.Fatalf("JobsDone = %d, want %d", st.JobsDone, st.JobsSubmitted)
	}
}

// TestPlanBatchCtxCancel covers the mid-batch cancellation path: the
// results slice stays index-aligned with the requests, the returned error
// is the first failure in request order, and no goroutines leak.
func TestPlanBatchCtxCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1, QueueDepth: 8})
	g := smallGraph(t)
	started := make(chan struct{})
	release := make(chan struct{})
	fast := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 3}
	reqs := []mcmpart.PlanRequest{
		{Graph: g, Options: fast},                           // [0] completes before the cancel
		{Graph: g, Options: gatedOptions(started, release)}, // [1] blocks mid-plan, then is cancelled
		{Graph: g, Options: mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 4}}, // [2] cancelled while queued
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started // [0] is done (single worker, FIFO) and [1] is mid-plan
		cancel()
		// Keep [1] pinned at its first sample until PlanBatch's wait loop
		// has reacted to the cancellation (it cancels each remaining job);
		// opening the gate immediately would let [1] finish all its samples
		// before its job context is ever cancelled.
		time.Sleep(200 * time.Millisecond)
		close(release)
	}()

	results, err := svc.PlanBatch(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PlanBatch error = %v, want context.Canceled (the first failure in request order)", err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("results has %d entries for %d requests", len(results), len(reqs))
	}
	if results[0] == nil {
		t.Fatal("results[0] is nil: the completed request lost its slot in the index mapping")
	}
	// Index 0's slot must hold exactly the plan for request 0: replanning
	// the same request (a cache hit now) is bit-identical.
	want, err := svc.Plan(context.Background(), g, fast)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(results[0], want); err != nil {
		t.Fatalf("results[0] does not match its request: %v", err)
	}
	if results[2] != nil {
		t.Fatalf("results[2] = %+v, want nil (cancelled while queued, never planned)", results[2])
	}

	svc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scrapeMetrics fetches url and parses the Prometheus text exposition
// into series → value.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpointMatchesStats drives a cold plan and a warm repeat
// through the HTTP handler, then cross-checks the /metrics exposition
// against /v1/stats: both views read the same registry, so every shared
// counter must agree exactly.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2})
	srv := httptest.NewServer(mcmpart.NewHTTPHandler(svc))
	defer srv.Close()

	body, err := json.Marshal(mcmpart.PlanRequestWire{
		Graph:   smallGraph(t),
		Options: mcmpart.PlanOptionsWire{Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // cold, then warm
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: HTTP %d", i, resp.StatusCode)
		}
	}

	var st mcmpart.ServiceStats
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	metrics := scrapeMetrics(t, srv.URL+"/metrics")
	same := []struct {
		series string
		stat   uint64
	}{
		{`mcmpart_jobs_submitted_total`, st.JobsSubmitted},
		{`mcmpart_jobs_total{state="done"}`, st.JobsDone},
		{`mcmpart_jobs_total{state="failed"}`, st.JobsFailed},
		{`mcmpart_jobs_total{state="cancelled"}`, st.JobsCancelled},
		{`mcmpart_jobs_shed_total`, st.JobsShed},
		{`mcmpart_cache_hits_total{tier="memory"}`, st.CacheHits},
		{`mcmpart_cache_misses_total{tier="memory"}`, st.CacheMisses},
		{`mcmpart_cache_hits_total{tier="disk"}`, st.DiskCacheHits},
		{`mcmpart_plans_executed_total`, st.PlansExecuted},
		{`mcmpart_plans_coalesced_total`, st.PlansCoalesced},
	}
	for _, s := range same {
		got, ok := metrics[s.series]
		if !ok {
			t.Errorf("series %s missing from /metrics", s.series)
			continue
		}
		if uint64(got) != s.stat {
			t.Errorf("%s = %v on /metrics but %d on /v1/stats", s.series, got, s.stat)
		}
	}
	if st.JobsSubmitted != 2 || st.CacheHits != 1 || st.CacheMisses != 1 || st.PlansExecuted != 1 {
		t.Fatalf("workload accounting off: %+v", st)
	}
	// The handler's own traffic is measured too: two plan requests and the
	// stats request preceded this scrape.
	if got := metrics[`mcmpart_http_requests_total{code="200",route="POST /v1/plan"}`]; got != 2 {
		t.Errorf(`mcmpart_http_requests_total{code="200",route="POST /v1/plan"} = %v, want 2`, got)
	}
	if got := metrics[`mcmpart_queue_capacity`]; got != float64(st.QueueCapacity) {
		t.Errorf("mcmpart_queue_capacity = %v, stats say %d", got, st.QueueCapacity)
	}
}

// TestRequestIDPropagation pins the correlation contract: a caller's
// X-Request-ID is echoed on the response, stamped into the job's status,
// and survives into later polls of the same job; absent a caller ID the
// handler generates one.
func TestRequestIDPropagation(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2})
	srv := httptest.NewServer(mcmpart.NewHTTPHandler(svc))
	defer srv.Close()

	body, err := json.Marshal(mcmpart.PlanRequestWire{
		Graph:   smallGraph(t),
		Options: mcmpart.PlanOptionsWire{Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "corr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Request-ID") != "corr-42" {
		t.Fatalf("response X-Request-ID = %q, want corr-42", resp.Header.Get("X-Request-ID"))
	}
	var st mcmpart.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.RequestID != "corr-42" {
		t.Fatalf("JobStatus.RequestID = %q, want corr-42", st.RequestID)
	}

	// The ID sticks to the job across later polls.
	var jr mcmpart.JobResponse
	pollResp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(pollResp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	pollResp.Body.Close()
	if jr.RequestID != "corr-42" {
		t.Fatalf("polled RequestID = %q, want corr-42", jr.RequestID)
	}

	// No caller ID: the handler generates one.
	resp2, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID on a header-less request")
	}

	if job, ok := svc.Job(st.ID); ok {
		_, _ = job.Wait(context.Background())
	} else {
		t.Fatalf("job %s not found", st.ID)
	}
}
