module mcmpart

go 1.24
